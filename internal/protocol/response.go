package protocol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/multi"
	"repro/internal/wiki"
)

// Correspondence is one derived cross-language attribute
// correspondence.
type Correspondence struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Confidence float64 `json:"confidence"`
}

// TypeResult is the wire form of one entity type's alignment outcome.
type TypeResult struct {
	TypeA           string           `json:"typeA"`
	TypeB           string           `json:"typeB"`
	Attributes      int              `json:"attributes"`
	Candidates      int              `json:"candidates"`
	Correspondences []Correspondence `json:"correspondences"`
	ElapsedMS       float64          `json:"elapsedMs"`
}

// CacheStats is a snapshot of a session's artifact cache. RestoredPairs
// and RestoredTypes count entries a warm start seeded from a persisted
// snapshot; they stay 0 for cold sessions. Misses count completed
// builds only; Failures counts builds that did not complete (in
// practice: cancelled contexts) and is omitted while zero so the
// failure-free wire bodies are unchanged from earlier protocol
// revisions.
type CacheStats struct {
	PairEntries   int    `json:"pairEntries"`
	TypeEntries   int    `json:"typeEntries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Failures      uint64 `json:"failures,omitempty"`
	RestoredPairs int    `json:"restoredPairs"`
	RestoredTypes int    `json:"restoredTypes"`
}

// MatchResponse answers a pair or single-type match. A single-type
// request returns the one requested type in Types/Results.
type MatchResponse struct {
	Pair      string       `json:"pair"`
	Types     [][2]string  `json:"types"`
	Results   []TypeResult `json:"results"`
	ElapsedMS float64      `json:"elapsedMs"`
	Cache     CacheStats   `json:"cache"`
}

// Result reconstructs the core result a remote matcher computed, from
// its wire response: the entity-type alignment plus, per type, the
// correspondence set and its confidences (via core.NewTypeResult). The
// reconstruction carries exactly what the cluster builder
// (multi.BuildClusters) consumes — Types, Cross and per-pair
// Confidence — so a router can scatter pair matches across a shard
// fleet and merge the wire responses into clusters identical to a
// single binary's: float64 confidences round-trip exactly through
// JSON, and Confidence on a reconstructed result returns the stored
// wire values rather than recomputing.
func (r *MatchResponse) Result() (*core.Result, error) {
	pair, err := ParsePair(r.Pair)
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		Pair:    pair,
		Types:   append([][2]string(nil), r.Types...),
		PerType: make(map[[2]string]*core.TypeResult, len(r.Results)),
	}
	for i := range r.Results {
		tr := &r.Results[i]
		cross := make(map[string]map[string]bool)
		conf := make(map[[2]string]float64, len(tr.Correspondences))
		for _, c := range tr.Correspondences {
			m := cross[c.A]
			if m == nil {
				m = make(map[string]bool)
				cross[c.A] = m
			}
			m[c.B] = true
			conf[[2]string{c.A, c.B}] = c.Confidence
		}
		res.PerType[[2]string{tr.TypeA, tr.TypeB}] = core.NewTypeResult(tr.TypeA, tr.TypeB, cross, conf)
	}
	return res, nil
}

// MatchAllPair summarizes one pair's outcome within an all-pairs batch.
type MatchAllPair struct {
	Pair            string  `json:"pair"`
	Types           int     `json:"types"`
	Correspondences int     `json:"correspondences"`
	Error           string  `json:"error,omitempty"`
	ElapsedMS       float64 `json:"elapsedMs"`
}

// MatchAllResponse answers an all-pairs batch: per-pair outcomes plus
// the merged cross-language correspondence clusters. Planned lists the
// canonical pair strings of the resolved plan in plan order, so a
// remote caller can reconstruct which pairs were matched directly.
type MatchAllResponse struct {
	Mode      string          `json:"mode"`
	Hub       string          `json:"hub"`
	Planned   []string        `json:"planned"`
	Pairs     []MatchAllPair  `json:"pairs"`
	Clusters  []multi.Cluster `json:"clusters"`
	Conflicts int             `json:"conflicts"`
	ElapsedMS float64         `json:"elapsedMs"`
	Cache     CacheStats      `json:"cache"`
}

// Plan reconstructs the batch's resolved pair plan from the response.
func (r *MatchAllResponse) Plan() (multi.Plan, error) {
	mode, err := multi.ParseMode(r.Mode)
	if err != nil {
		return multi.Plan{}, err
	}
	p := multi.Plan{Mode: mode, Hub: wiki.Language(r.Hub)}
	for _, raw := range r.Planned {
		pair, err := ParsePair(raw)
		if err != nil {
			return multi.Plan{}, fmt.Errorf("planned pair: %w", err)
		}
		p.Pairs = append(p.Pairs, pair)
	}
	return p, nil
}

// Induced projects the response's clusters back to per-pair
// correspondence sets keyed by entity-type pair, including purely
// transitive pairs the plan never matched directly — the remote twin of
// multi.BatchResult.Induced.
func (r *MatchAllResponse) Induced(pair wiki.LanguagePair) map[[2]string]eval.Correspondences {
	b := multi.BatchResult{Clusters: r.Clusters}
	return b.Induced(pair)
}

// StreamLine is one NDJSON line of POST /v1/stream or
// /v1/audit/stream. Pair-scoped streams emit Type lines and close with
// FinalMatch; all-pairs streams emit Pair progress lines and close with
// FinalAll; audit streams emit Pair lines for the matching phase, then
// ranked Finding lines, and close with FinalAudit. Error lines carry
// the failure that stopped one unit of work without necessarily ending
// the stream.
type StreamLine struct {
	Done       int               `json:"done"`
	Total      int               `json:"total"`
	Type       *TypeResult       `json:"type,omitempty"`
	Pair       *MatchAllPair     `json:"pair,omitempty"`
	Finding    *AuditFinding     `json:"finding,omitempty"`
	FinalMatch *MatchResponse    `json:"finalMatch,omitempty"`
	FinalAll   *MatchAllResponse `json:"finalAll,omitempty"`
	FinalAudit *AuditResponse    `json:"finalAudit,omitempty"`
	Error      *Error            `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/corpus.
type StatsResponse struct {
	Corpus wiki.Stats  `json:"corpus"`
	Cache  CacheStats  `json:"cache"`
	Config core.Config `json:"config"`
}

// InvalidateRequest asks the session to drop cached artifacts for one
// language (empty: drop everything).
type InvalidateRequest struct {
	Lang string `json:"lang,omitempty"`
}

// Validate resolves the language. The zero Language (drop everything)
// is valid.
func (r InvalidateRequest) Validate() (wiki.Language, error) {
	lang := wiki.Language(r.Lang)
	if lang != "" && !lang.Valid() {
		return "", Errorf(CodeInvalidArgument, "invalid language %q", r.Lang)
	}
	return lang, nil
}

// InvalidateResponse reports how many cache entries were dropped,
// with the per-kind breakdown the artifact graph tracks: Pairs counts
// dropped pair-level nodes (dictionary + alignment), Types dropped
// type-level nodes (similarity workspace + LSI model); Dropped is
// their sum. The legacy /session/invalidate shim renders only Dropped.
type InvalidateResponse struct {
	Dropped int `json:"dropped"`
	Pairs   int `json:"pairs"`
	Types   int `json:"types"`
}

// SnapshotInfo describes the artifact snapshot a warm-started server
// restored from.
type SnapshotInfo struct {
	Loaded     bool    `json:"loaded"`
	CreatedAt  string  `json:"createdAt,omitempty"`
	AgeSeconds float64 `json:"ageSeconds,omitempty"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	Status        string       `json:"status"`
	UptimeSeconds float64      `json:"uptimeSeconds"`
	Snapshot      SnapshotInfo `json:"snapshot"`
	Cache         CacheStats   `json:"cache"`
}

// Metrics is the body of GET /v1/metrics: the middleware stack's
// counters since process start. InFlight includes the /v1/metrics
// request reading it.
type Metrics struct {
	RequestsTotal uint64            `json:"requestsTotal"`
	InFlight      int64             `json:"inFlight"`
	ByStatus      map[string]uint64 `json:"byStatus,omitempty"`
	ByRoute       map[string]uint64 `json:"byRoute,omitempty"`
	Shed          uint64            `json:"shed"`
	Panics        uint64            `json:"panics"`
}
