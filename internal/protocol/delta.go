package protocol

import (
	"strings"

	"repro/internal/wiki"
)

// DeltaRequest is the body of POST /v1/corpus/delta: a batch of corpus
// edits applied atomically. Upserts add or replace whole articles;
// Removes delete them. At least one edit is required.
type DeltaRequest struct {
	Upserts []DeltaUpsert `json:"upserts,omitempty"`
	Removes []DeltaRef    `json:"removes,omitempty"`
}

// DeltaUpsert adds or replaces one article, supplied as raw wikitext —
// the same form the corpus loader ingests. The server parses the
// infobox, categories and interlanguage links out of it.
type DeltaUpsert struct {
	Lang     string `json:"lang"`
	Title    string `json:"title"`
	Wikitext string `json:"wikitext"`
}

// DeltaRef names one article to remove.
type DeltaRef struct {
	Lang  string `json:"lang"`
	Title string `json:"title"`
}

// Validate parses the request into a wiki.Delta, rejecting invalid
// languages, empty titles, unparseable wikitext and empty deltas.
func (r DeltaRequest) Validate() (wiki.Delta, error) {
	if len(r.Upserts) == 0 && len(r.Removes) == 0 {
		return wiki.Delta{}, Errorf(CodeInvalidArgument, "delta has no edits")
	}
	var d wiki.Delta
	for _, u := range r.Upserts {
		lang := wiki.Language(u.Lang)
		if !lang.Valid() {
			return wiki.Delta{}, Errorf(CodeInvalidArgument, "upsert: invalid language %q", u.Lang)
		}
		if strings.TrimSpace(u.Title) == "" {
			return wiki.Delta{}, Errorf(CodeInvalidArgument, "upsert: empty title")
		}
		a, err := wiki.ParsePage(lang, u.Title, u.Wikitext)
		if err != nil {
			return wiki.Delta{}, Errorf(CodeInvalidArgument, "upsert %s:%s: %v", u.Lang, u.Title, err)
		}
		d.Upserts = append(d.Upserts, a)
	}
	for _, ref := range r.Removes {
		lang := wiki.Language(ref.Lang)
		if !lang.Valid() {
			return wiki.Delta{}, Errorf(CodeInvalidArgument, "remove: invalid language %q", ref.Lang)
		}
		if strings.TrimSpace(ref.Title) == "" {
			return wiki.Delta{}, Errorf(CodeInvalidArgument, "remove: empty title")
		}
		d.Removes = append(d.Removes, wiki.Key{Language: lang, Title: ref.Title})
	}
	return d, nil
}

// DeltaPair reports what one delta did to one affected cached pair.
type DeltaPair struct {
	Pair string `json:"pair"`
	// Rebuilt reports that the pair-level artifacts (dictionary or
	// entity-type alignment) changed: the node was reseeded with a
	// fresh build and every type node under it was dropped.
	Rebuilt bool `json:"rebuilt"`
	// DroppedTypes lists the type nodes invalidated under this pair.
	DroppedTypes [][2]string `json:"droppedTypes"`
}

// DeltaResponse answers POST /v1/corpus/delta: what the edit batch did
// to the corpus and which cached artifacts it invalidated.
type DeltaResponse struct {
	Added       int         `json:"added"`
	Updated     int         `json:"updated"`
	Removed     int         `json:"removed"`
	Fingerprint string      `json:"fingerprint"` // new corpus fingerprint, hex
	Languages   []string    `json:"languages"`   // languages the delta touched, sorted
	Pairs       []DeltaPair `json:"pairs"`       // affected cached pairs, sorted
	// DroppedPairs/DroppedTypes total the invalidated graph nodes
	// (rebuilt pair nodes count under DroppedPairs: the old node was
	// dropped, even though a fresh one was seeded in its place).
	DroppedPairs int        `json:"droppedPairs"`
	DroppedTypes int        `json:"droppedTypes"`
	ElapsedMS    float64    `json:"elapsedMs"`
	Cache        CacheStats `json:"cache"`
}
