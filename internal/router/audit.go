package router

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/client"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/service"
)

// The fleet audit path. The router holds no corpus, but every shard
// holds the full one — only artifacts are sharded — so an audit splits
// cleanly in two: the matching phase scatter-gathers across the fleet
// exactly like /v1/matchall (each pair on its owning shard's warm
// cache), and the merged clusters are then forwarded to one healthy
// shard, which runs the value comparison over its corpus copy. The
// forwarded request is an ordinary AuditRequest with Clusters set, so
// the shard side needs no fleet-specific code, and the assembled
// response is byte-identical to a single binary's modulo timings and
// cache provenance.

func (rt *Router) handleAudit(w http.ResponseWriter, req *http.Request) {
	var areq protocol.AuditRequest
	if e := service.DecodeBody(req, &areq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	r, err := areq.Validate()
	if err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	start := time.Now()
	var pairs []protocol.MatchAllPair
	var cacheFn func() protocol.CacheStats
	if areq.Clusters == nil {
		final, fm, e := rt.scatterGather(req.Context(), protocol.MatchRequest{All: true},
			protocol.Resolved{All: true, Multi: r.Multi})
		if e != nil {
			service.WriteEnvelope(w, e)
			return
		}
		if final == nil {
			service.WriteEnvelope(w, protocol.Errorf(protocol.CodeUnavailable, "audit matching phase produced no result"))
			return
		}
		areq.Clusters = final.Clusters
		if areq.Clusters == nil {
			areq.Clusters = []multi.Cluster{}
		}
		for i := range final.Outcomes {
			pairs = append(pairs, service.PairOutcomeDTO(&final.Outcomes[i]))
		}
		cacheFn = fm.cacheTotals
	}
	resp, e := rt.forwardAudit(req.Context(), areq)
	if e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	if cacheFn != nil {
		resp.Pairs = pairs
		resp.Cache = cacheFn()
	}
	resp.ElapsedMS = msSince(start)
	service.WriteJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleAuditStream(w http.ResponseWriter, req *http.Request) {
	var areq protocol.AuditRequest
	if e := service.DecodeBody(req, &areq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	r, err := areq.Validate()
	if err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	start := time.Now()
	lines := make(chan protocol.StreamLine, 16)
	go func() {
		defer close(lines)
		emit := func(line protocol.StreamLine) bool {
			select {
			case lines <- line:
				return true
			case <-ctx.Done():
				return false
			}
		}
		var pairs []protocol.MatchAllPair
		var cacheFn func() protocol.CacheStats
		if areq.Clusters == nil {
			langs, e := rt.fleetLanguages(ctx)
			if e != nil {
				emit(protocol.StreamLine{Error: e})
				return
			}
			plan, err := multi.NewPlan(langs, r.Multi.Mode, r.Multi.Hub)
			if err != nil {
				emit(protocol.StreamLine{Error: protocol.FromErr(err)})
				return
			}
			fm := rt.fleetMatcher(protocol.MatchRequest{})
			updates := multi.StreamPlan(ctx, fm, plan, rt.batchWorkers(protocol.Resolved{Multi: r.Multi}, plan))
			var final *multi.BatchResult
			for u := range updates {
				if u.Outcome != nil {
					p := service.PairOutcomeDTO(u.Outcome)
					if !emit(protocol.StreamLine{Done: u.Done, Total: u.Total, Pair: &p}) {
						for range updates {
						}
						return
					}
				}
				if u.Final != nil {
					final = u.Final
				}
			}
			if final == nil {
				return
			}
			areq.Clusters = final.Clusters
			if areq.Clusters == nil {
				areq.Clusters = []multi.Cluster{}
			}
			for i := range final.Outcomes {
				pairs = append(pairs, service.PairOutcomeDTO(&final.Outcomes[i]))
			}
			cacheFn = fm.cacheTotals
		}
		st, e := rt.forwardAuditStream(ctx, areq)
		if e != nil {
			emit(protocol.StreamLine{Error: e})
			return
		}
		defer st.Close()
		for st.Next() {
			line := st.Line()
			if line.FinalAudit != nil && cacheFn != nil {
				line.FinalAudit.Pairs = pairs
				line.FinalAudit.Cache = cacheFn()
				line.FinalAudit.ElapsedMS = msSince(start)
			}
			if !emit(line) {
				return
			}
		}
		if err := st.Err(); err != nil {
			emit(protocol.StreamLine{Error: protocol.FromErr(err)})
		}
	}()
	service.WriteNDJSONStream(w, rt.streamTimeout, cancel, lines,
		func(line protocol.StreamLine) (any, bool) { return line, true })
}

// forwardAudit hands a clusters-bearing audit request to the first
// healthy shard. Structured non-retryable errors (validation) pass
// through immediately; transport-class failures try the next shard —
// any shard can serve the comparison, since all hold the full corpus.
func (rt *Router) forwardAudit(ctx context.Context, areq protocol.AuditRequest) (*protocol.AuditResponse, *protocol.Error) {
	var lastErr *protocol.Error
	for i := range rt.shards {
		sh := &rt.shards[i]
		resp, err := sh.c.Audit(ctx, areq)
		if err != nil {
			var pe *protocol.Error
			if errors.As(err, &pe) && !pe.Retryable {
				return nil, pe
			}
			lastErr = rt.shardErr(sh, err)
			continue
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = protocol.Errorf(protocol.CodeUnavailable, "no shard answered the audit")
	}
	return nil, lastErr
}

// forwardAuditStream is forwardAudit for the streaming endpoint.
func (rt *Router) forwardAuditStream(ctx context.Context, areq protocol.AuditRequest) (*client.Stream, *protocol.Error) {
	var lastErr *protocol.Error
	for i := range rt.shards {
		sh := &rt.shards[i]
		st, err := sh.c.AuditStream(ctx, areq)
		if err != nil {
			var pe *protocol.Error
			if errors.As(err, &pe) && !pe.Retryable {
				return nil, pe
			}
			lastErr = rt.shardErr(sh, err)
			continue
		}
		return st, nil
	}
	if lastErr == nil {
		lastErr = protocol.Errorf(protocol.CodeUnavailable, "no shard answered the audit stream")
	}
	return nil, lastErr
}
