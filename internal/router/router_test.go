package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var (
	corpusOnce sync.Once
	testCorpus *wiki.Corpus
)

func smallCorpus(t testing.TB) *wiki.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		c, _, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testCorpus = c
	})
	return testCorpus
}

// fleet is one running test topology: count shard replicas (each gated
// and serving the full corpus), a router over them, and a plain
// single-binary server on the same corpus for equivalence checks.
type fleet struct {
	rt      *Router
	rtSrv   *httptest.Server
	shards  []*httptest.Server
	single  *httptest.Server
	lastIDs []*atomic.Value // per shard: last inbound X-Request-Id
}

func startFleet(t *testing.T, count int, rtOpts ...Option) *fleet {
	t.Helper()
	c := smallCorpus(t)
	f := &fleet{}
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		s := service.New(c)
		h := service.NewHandler(s, service.WithShardGate(shardLabel(i, count), Owned(i, count)))
		last := &atomic.Value{}
		f.lastIDs = append(f.lastIDs, last)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			last.Store(r.Header.Get("X-Request-Id"))
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		f.shards = append(f.shards, srv)
		addrs[i] = srv.URL
	}
	opts := append([]Option{
		WithHealthInterval(-1),
		WithProbeTimeout(2 * time.Second),
		WithClientOptions(client.WithRetries(0, time.Millisecond)),
	}, rtOpts...)
	rt, err := New(addrs, opts...)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	t.Cleanup(rt.Close)
	f.rt = rt
	f.rtSrv = httptest.NewServer(rt.Handler())
	t.Cleanup(f.rtSrv.Close)

	f.single = httptest.NewServer(service.NewHandler(service.New(c)))
	t.Cleanup(f.single.Close)
	return f
}

func shardLabel(i, count int) string {
	return "shard " + string(rune('0'+i)) + "/" + string(rune('0'+count))
}

// post POSTs a JSON body and returns status and raw response bytes.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// normalizeMatchAll zeroes the fields that legitimately differ between
// a routed batch and a local one — wall-clock timings and cache
// provenance — and returns the re-marshalled bytes. Everything else
// (mode, hub, planned pairs, per-pair outcomes, clusters, conflicts)
// must match byte for byte.
func normalizeMatchAll(t *testing.T, raw []byte) []byte {
	t.Helper()
	var resp protocol.MatchAllResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode matchall: %v (%s)", err, raw)
	}
	resp.ElapsedMS = 0
	resp.Cache = protocol.CacheStats{}
	for i := range resp.Pairs {
		resp.Pairs[i].ElapsedMS = 0
	}
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMatchAllByteIdentical is the tentpole acceptance gate: a 2-shard
// scatter-gathered /v1/matchall must serialize byte-identically to a
// single binary's — clusters, induced correspondences, planned pairs —
// in both pivot and direct modes, with threshold overrides too.
func TestMatchAllByteIdentical(t *testing.T) {
	f := startFleet(t, 2)
	for _, body := range []string{
		`{"all":true}`,
		`{"all":true,"mode":"direct"}`,
		`{"all":true,"tsim":0.8}`,
	} {
		gotStatus, got := post(t, f.rtSrv.URL+"/v1/matchall", body)
		wantStatus, want := post(t, f.single.URL+"/v1/matchall", body)
		if gotStatus != http.StatusOK || wantStatus != http.StatusOK {
			t.Fatalf("%s: router %d, single %d", body, gotStatus, wantStatus)
		}
		gotN, wantN := normalizeMatchAll(t, got), normalizeMatchAll(t, want)
		if !bytes.Equal(gotN, wantN) {
			t.Errorf("%s: routed batch differs from single binary\nrouter: %s\nsingle: %s", body, gotN, wantN)
		}
	}

	// Induced correspondences reconstruct identically from both bodies.
	_, got := post(t, f.rtSrv.URL+"/v1/matchall", `{"all":true}`)
	_, want := post(t, f.single.URL+"/v1/matchall", `{"all":true}`)
	var gotAll, wantAll protocol.MatchAllResponse
	if err := json.Unmarshal(got, &gotAll); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantAll); err != nil {
		t.Fatal(err)
	}
	pair := wiki.OrientPair("pt", "vi", wiki.English) // transitive: never matched directly in pivot mode
	gi := gotAll.Induced(pair)
	wi := wantAll.Induced(pair)
	if len(gi) == 0 {
		t.Error("routed batch induced no pt-vi correspondences")
	}
	if !reflect.DeepEqual(gi, wi) {
		t.Errorf("induced correspondences differ:\nrouter: %v\nsingle: %v", gi, wi)
	}
	if len(gotAll.Planned) == 0 || len(gotAll.Clusters) == 0 {
		t.Fatalf("routed batch is hollow: planned=%d clusters=%d", len(gotAll.Planned), len(gotAll.Clusters))
	}
}

// TestUnaryRoutesToOwner: a pair request through the router answers
// identically (modulo timing) to the single binary, even though each
// shard would reject the pairs it does not own.
func TestUnaryRoutesToOwner(t *testing.T) {
	f := startFleet(t, 2)
	for _, body := range []string{`{"pair":"pt-en"}`, `{"pair":"vi-en"}`, `{"pair":"pt-en","type":"filme"}`} {
		gotStatus, got := post(t, f.rtSrv.URL+"/v1/match", body)
		wantStatus, want := post(t, f.single.URL+"/v1/match", body)
		if gotStatus != http.StatusOK || wantStatus != http.StatusOK {
			t.Fatalf("%s: router %d, single %d", body, gotStatus, wantStatus)
		}
		var gotR, wantR protocol.MatchResponse
		if err := json.Unmarshal(got, &gotR); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &wantR); err != nil {
			t.Fatal(err)
		}
		gotR.ElapsedMS, wantR.ElapsedMS = 0, 0
		gotR.Cache, wantR.Cache = protocol.CacheStats{}, protocol.CacheStats{}
		for i := range gotR.Results {
			gotR.Results[i].ElapsedMS = 0
		}
		for i := range wantR.Results {
			wantR.Results[i].ElapsedMS = 0
		}
		gn, _ := json.Marshal(gotR)
		wn, _ := json.Marshal(wantR)
		if !bytes.Equal(gn, wn) {
			t.Errorf("%s: routed match differs\nrouter: %s\nsingle: %s", body, gn, wn)
		}
	}

	// Canonical validation errors come from the router itself.
	status, raw := post(t, f.rtSrv.URL+"/v1/match", `{"pair":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid pair via router: status %d, body %s", status, raw)
	}
	var env protocol.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code != protocol.CodeInvalidArgument {
		t.Fatalf("invalid pair envelope: %s", raw)
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-Id survives the
// router hop and reaches the owning shard.
func TestRequestIDPropagation(t *testing.T) {
	f := startFleet(t, 2)
	req, err := http.NewRequest(http.MethodPost, f.rtSrv.URL+"/v1/match", strings.NewReader(`{"pair":"pt-en"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "fleet-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "fleet-trace-1" {
		t.Errorf("router did not echo the request ID: %q", got)
	}
	owner := ShardFor(wiki.PtEn, 2)
	if got, _ := f.lastIDs[owner].Load().(string); got != "fleet-trace-1" {
		t.Errorf("shard %d saw request ID %q, want fleet-trace-1", owner, got)
	}

	// A router-minted ID propagates too: it is always set and valid.
	status, _ := post(t, f.rtSrv.URL+"/v1/match", `{"pair":"vi-en"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	owner = ShardFor(wiki.VnEn, 2)
	if got, _ := f.lastIDs[owner].Load().(string); got == "" {
		t.Error("shard saw no request ID on a router-minted request")
	}
}

// TestStreamThroughRouter: pair streams relay the owning shard's lines
// (types then a final summary); all-pairs streams scatter-gather with
// progress lines and a final response equal (normalized) to matchall.
func TestStreamThroughRouter(t *testing.T) {
	f := startFleet(t, 2)

	lines := streamLines(t, f.rtSrv.URL+"/v1/stream", `{"pair":"pt-en"}`)
	if len(lines) < 2 {
		t.Fatalf("pair stream produced %d lines", len(lines))
	}
	var sawType bool
	var final *protocol.MatchResponse
	for _, line := range lines {
		if line.Type != nil {
			sawType = true
		}
		if line.FinalMatch != nil {
			final = line.FinalMatch
		}
	}
	if !sawType || final == nil {
		t.Fatalf("pair stream missing type lines or final (types=%v final=%v)", sawType, final != nil)
	}
	if final.Pair != "pt-en" || len(final.Results) == 0 {
		t.Fatalf("hollow final: %+v", final)
	}

	lines = streamLines(t, f.rtSrv.URL+"/v1/stream", `{"all":true}`)
	var finalAll *protocol.MatchAllResponse
	pairLines := 0
	for _, line := range lines {
		if line.Pair != nil {
			pairLines++
		}
		if line.FinalAll != nil {
			finalAll = line.FinalAll
		}
	}
	if finalAll == nil || pairLines != len(finalAll.Planned) {
		t.Fatalf("all stream: %d pair lines, final %v", pairLines, finalAll != nil)
	}
	_, want := post(t, f.single.URL+"/v1/matchall", `{"all":true}`)
	finalRaw, err := json.Marshal(finalAll)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeMatchAll(t, finalRaw), normalizeMatchAll(t, want)) {
		t.Error("streamed final differs from single-binary matchall")
	}
}

func streamLines(t *testing.T, url, body string) []protocol.StreamLine {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	var lines []protocol.StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line protocol.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("decode line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestDeltaFanout: a corpus delta through the router reaches every
// shard, reports per-shard outcomes, and stays consistent (every shard
// lands on the same fingerprint).
func TestDeltaFanout(t *testing.T) {
	f := startFleet(t, 2)
	body := `{"upserts":[{"lang":"pt","title":"Cidade Frota","wikitext":"{{Infobox filme | nome = Cidade Frota}}"}]}`
	status, raw := post(t, f.rtSrv.URL+"/v1/corpus/delta", body)
	if status != http.StatusOK {
		t.Fatalf("delta status %d: %s", status, raw)
	}
	var resp protocol.FleetDeltaResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != protocol.FleetOK || !resp.Consistent || len(resp.Shards) != 2 {
		t.Fatalf("delta fan-out: %+v", resp)
	}
	for _, sd := range resp.Shards {
		if sd.Error != nil || sd.Response == nil || sd.Response.Added != 1 {
			t.Errorf("shard %d delta outcome: %+v", sd.Shard, sd)
		}
	}

	// A malformed delta is rejected router-side with the canonical
	// envelope and touches no shard.
	status, raw = post(t, f.rtSrv.URL+"/v1/corpus/delta", `{"upserts":[{"lang":"??","title":"x","wikitext":""}]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad delta status %d: %s", status, raw)
	}
}

// TestInvalidateFanout: invalidation sums per-shard drop counts.
func TestInvalidateFanout(t *testing.T) {
	f := startFleet(t, 2)
	// Warm both shards.
	post(t, f.rtSrv.URL+"/v1/match", `{"pair":"pt-en"}`)
	post(t, f.rtSrv.URL+"/v1/match", `{"pair":"vi-en"}`)
	status, raw := post(t, f.rtSrv.URL+"/v1/invalidate", `{}`)
	if status != http.StatusOK {
		t.Fatalf("invalidate status %d: %s", status, raw)
	}
	var resp protocol.InvalidateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dropped < 2 || resp.Dropped != resp.Pairs+resp.Types {
		t.Fatalf("fleet invalidate summed wrong: %+v", resp)
	}
}

// TestCorpusAggregation: /v1/corpus serves the shared corpus stats with
// fleet-summed cache counters.
func TestCorpusAggregation(t *testing.T) {
	f := startFleet(t, 2)
	post(t, f.rtSrv.URL+"/v1/match", `{"pair":"pt-en"}`)
	post(t, f.rtSrv.URL+"/v1/match", `{"pair":"vi-en"}`)
	resp, err := http.Get(f.rtSrv.URL + "/v1/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats protocol.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Corpus.Articles["pt"] == 0 || stats.Corpus.Articles["en"] == 0 {
		t.Fatalf("fleet corpus stats hollow: %+v", stats.Corpus.Articles)
	}
	// Both pairs were matched on different shards; the summed cache must
	// show both pair entries.
	if stats.Cache.PairEntries < 2 {
		t.Errorf("fleet cache PairEntries = %d, want >= 2", stats.Cache.PairEntries)
	}
}

// TestHealthAndMetrics: the aggregated health and metrics endpoints
// report every shard.
func TestHealthAndMetrics(t *testing.T) {
	f := startFleet(t, 2)
	var health protocol.FleetHealth
	getJSON(t, f.rtSrv.URL+"/v1/healthz", &health)
	if health.Status != protocol.FleetOK || health.ShardsHealthy != 2 || health.ShardsTotal != 2 {
		t.Fatalf("fleet health: %+v", health)
	}
	if h := f.rt.Health(); h == nil || h.Status != protocol.FleetOK {
		t.Error("router did not record the probed health")
	}

	post(t, f.rtSrv.URL+"/v1/match", `{"pair":"pt-en"}`)
	var metrics protocol.FleetMetrics
	getJSON(t, f.rtSrv.URL+"/v1/metrics", &metrics)
	if metrics.Router.RequestsTotal == 0 {
		t.Error("router metrics did not count requests")
	}
	if len(metrics.Shards) != 2 {
		t.Fatalf("metrics shards = %d", len(metrics.Shards))
	}
	for _, sm := range metrics.Shards {
		if sm.Error != "" || sm.Metrics == nil {
			t.Errorf("shard %d metrics: %+v", sm.Shard, sm)
		}
	}
}

// TestHealthPoller: with a positive interval the background poller
// records fleet health without any /v1/healthz request.
func TestHealthPoller(t *testing.T) {
	f := startFleet(t, 2, WithHealthInterval(20*time.Millisecond))
	deadline := time.Now().Add(5 * time.Second)
	for f.rt.Health() == nil {
		if time.Now().After(deadline) {
			t.Fatal("poller never recorded fleet health")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := f.rt.Health(); h.Status != protocol.FleetOK {
		t.Errorf("polled status = %s", h.Status)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

// TestPartialFailure is the degraded-fleet gate: with one shard down,
// its pairs answer unavailable, scatter-gather keeps going with
// per-pair errors, health reports degraded, and deltas report the
// failed shard without aborting the healthy ones.
func TestPartialFailure(t *testing.T) {
	f := startFleet(t, 2)
	const count = 2
	deadShard := ShardFor(wiki.PtEn, count)
	f.shards[deadShard].Close()

	// Unary request for a dead-shard pair: retryable unavailable.
	status, raw := post(t, f.rtSrv.URL+"/v1/match", `{"pair":"pt-en"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard match status %d: %s", status, raw)
	}
	var env protocol.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		t.Fatalf("dead-shard envelope: %s", raw)
	}
	if env.Error.Code != protocol.CodeUnavailable || !env.Error.Retryable {
		t.Fatalf("dead-shard envelope: %+v", env.Error)
	}

	// Pairs owned by the surviving shard still serve.
	alive := wiki.VnEn
	if ShardFor(alive, count) == deadShard {
		t.Fatalf("test corpus pairs all landed on one shard; pick different pairs")
	}
	if status, _ := post(t, f.rtSrv.URL+"/v1/match", `{"pair":"vi-en"}`); status != http.StatusOK {
		t.Fatalf("surviving shard match status %d", status)
	}

	// Scatter-gather: per-pair errors for the dead shard, results for
	// the rest, no abort.
	status, raw = post(t, f.rtSrv.URL+"/v1/matchall", `{"all":true}`)
	if status != http.StatusOK {
		t.Fatalf("degraded matchall status %d: %s", status, raw)
	}
	var all protocol.MatchAllResponse
	if err := json.Unmarshal(raw, &all); err != nil {
		t.Fatal(err)
	}
	failed, succeeded := 0, 0
	for _, p := range all.Pairs {
		if p.Error != "" {
			failed++
			if !strings.Contains(p.Error, "unavailable") {
				t.Errorf("pair %s failed with %q, want an unavailable-class error", p.Pair, p.Error)
			}
		} else {
			succeeded++
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("degraded batch: %d failed, %d succeeded — want both", failed, succeeded)
	}

	// Health: degraded, with the dead shard identified.
	var health protocol.FleetHealth
	getJSON(t, f.rtSrv.URL+"/v1/healthz", &health)
	if health.Status != protocol.FleetDegraded || health.ShardsHealthy != 1 {
		t.Fatalf("degraded health: %+v", health)
	}
	for _, s := range health.Shards {
		if s.Shard == deadShard && (s.Status != protocol.FleetDown || s.Error == "") {
			t.Errorf("dead shard health: %+v", s)
		}
	}

	// Delta fan-out: healthy shard applies, dead shard reports its
	// error, consistency is (rightly) lost.
	status, raw = post(t, f.rtSrv.URL+"/v1/corpus/delta",
		`{"upserts":[{"lang":"pt","title":"Vila Degradada","wikitext":"{{Infobox filme | nome = Vila Degradada}}"}]}`)
	if status != http.StatusOK {
		t.Fatalf("degraded delta status %d: %s", status, raw)
	}
	var dresp protocol.FleetDeltaResponse
	if err := json.Unmarshal(raw, &dresp); err != nil {
		t.Fatal(err)
	}
	if dresp.Status != protocol.FleetDegraded || dresp.Consistent {
		t.Fatalf("degraded delta: %+v", dresp)
	}

	// Invalidate refuses to half-succeed silently.
	status, raw = post(t, f.rtSrv.URL+"/v1/invalidate", `{}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded invalidate status %d: %s", status, raw)
	}

	// Kill the rest: the fleet is down.
	f.shards[1-deadShard].Close()
	getJSON(t, f.rtSrv.URL+"/v1/healthz", &health)
	if health.Status != protocol.FleetDown || health.ShardsHealthy != 0 {
		t.Fatalf("down health: %+v", health)
	}
}

// TestRouterStatelessContract: requests the router cannot serve keep
// the canonical envelopes (bad method, unknown endpoint, pair-scoped
// matchall).
func TestRouterStatelessContract(t *testing.T) {
	f := startFleet(t, 2)
	resp, err := http.Get(f.rtSrv.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/match: %d", resp.StatusCode)
	}
	status, raw := post(t, f.rtSrv.URL+"/v1/matchall", `{"pair":"pt-en"}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("/v1/match")) {
		t.Errorf("pair-scoped matchall via router: %d %s", status, raw)
	}
	resp, err = http.Get(f.rtSrv.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint: %d", resp.StatusCode)
	}
	status, _ = post(t, f.rtSrv.URL+"/v1/stream", `{"pair":"pt-en","type":"filme"}`)
	if status != http.StatusBadRequest {
		t.Errorf("single-type stream via router: %d", status)
	}
}

// TestRouterAgainstFilteredRestore ties the whole shard story together:
// replicas warm-restored from a filtered snapshot serve their owned
// slice entirely from cache through the router, byte-identical to the
// session that wrote the snapshot.
func TestRouterAgainstFilteredRestore(t *testing.T) {
	c := smallCorpus(t)
	warm := service.New(c)
	ctx := context.Background()
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		if _, err := warm.Match(ctx, pair); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}

	const count = 2
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		s, err := service.RestoreFiltered(c, bytes.NewReader(buf.Bytes()), Owned(i, count))
		if err != nil {
			t.Fatalf("shard %d restore: %v", i, err)
		}
		srv := httptest.NewServer(service.NewHandler(s, service.WithShardGate(shardLabel(i, count), Owned(i, count))))
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	rt, err := New(addrs, WithHealthInterval(-1), WithClientOptions(client.WithRetries(0, time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rtSrv := httptest.NewServer(rt.Handler())
	t.Cleanup(rtSrv.Close)

	for _, pair := range []string{"pt-en", "vi-en"} {
		status, raw := post(t, rtSrv.URL+"/v1/match", `{"pair":"`+pair+`"}`)
		if status != http.StatusOK {
			t.Fatalf("%s via fleet: %d %s", pair, status, raw)
		}
		var resp protocol.MatchResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cache.Misses != 0 {
			t.Errorf("%s: shard rebuilt %d artifacts; the filtered restore should have seeded them all", pair, resp.Cache.Misses)
		}
		if resp.Cache.RestoredPairs != 1 {
			t.Errorf("%s: owning shard restored %d pairs, want exactly its 1", pair, resp.Cache.RestoredPairs)
		}
	}
}

// normalizeAudit zeroes the wall-clock and cache-provenance fields of an
// audit body, like normalizeMatchAll.
func normalizeAudit(t *testing.T, raw []byte) []byte {
	t.Helper()
	var resp protocol.AuditResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decode audit: %v (%s)", err, raw)
	}
	resp.ElapsedMS = 0
	resp.Cache = protocol.CacheStats{}
	for i := range resp.Pairs {
		resp.Pairs[i].ElapsedMS = 0
	}
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAuditByteIdentical is the audit acceptance gate: a 2-shard routed
// /v1/audit — matching scatter-gathered across the fleet, value
// comparison forwarded to one shard — must serialize byte-identically
// to a single binary's, modulo timings and cache provenance.
func TestAuditByteIdentical(t *testing.T) {
	f := startFleet(t, 2)
	for _, body := range []string{
		`{}`,
		`{"mode":"direct"}`,
		`{"minSeverity":0.5,"limit":5}`,
		`{"pair":"pt-en"}`,
	} {
		gotStatus, got := post(t, f.rtSrv.URL+"/v1/audit", body)
		wantStatus, want := post(t, f.single.URL+"/v1/audit", body)
		if gotStatus != http.StatusOK || wantStatus != http.StatusOK {
			t.Fatalf("%s: router %d, single %d (%s / %s)", body, gotStatus, wantStatus, got, want)
		}
		gotN, wantN := normalizeAudit(t, got), normalizeAudit(t, want)
		if !bytes.Equal(gotN, wantN) {
			t.Errorf("%s: routed audit differs from single binary\nrouter: %s\nsingle: %s", body, gotN, wantN)
		}
	}

	// The report is non-hollow and ranked.
	_, raw := post(t, f.rtSrv.URL+"/v1/audit", `{}`)
	var resp protocol.AuditResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Entities == 0 || resp.Compared == 0 || resp.Clusters == 0 {
		t.Fatalf("hollow routed audit: %+v", resp)
	}
	for i := 1; i < len(resp.Findings); i++ {
		if resp.Findings[i].Severity > resp.Findings[i-1].Severity {
			t.Errorf("routed findings not ranked at %d", i)
		}
	}

	// Canonical validation errors come from the router itself.
	status, raw := post(t, f.rtSrv.URL+"/v1/audit", `{"mode":"nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad mode via router: %d %s", status, raw)
	}
	status, raw = post(t, f.rtSrv.URL+"/v1/audit", `{"hub":"de"}`)
	if status != http.StatusNotFound {
		t.Fatalf("unknown hub via router: %d %s", status, raw)
	}

	// A shard replica refuses a cluster-less audit: the matching phase
	// belongs to the router.
	status, raw = post(t, f.shards[0].URL+"/v1/audit", `{}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("router")) {
		t.Fatalf("replica accepted a cluster-less audit: %d %s", status, raw)
	}
}

// TestAuditStreamThroughRouter: the routed audit stream emits the
// matching phase's pair lines, the ranked finding lines, and a final
// equal (normalized) to the unary routed audit.
func TestAuditStreamThroughRouter(t *testing.T) {
	f := startFleet(t, 2)
	lines := streamLines(t, f.rtSrv.URL+"/v1/audit/stream", `{}`)
	pairLines, findingLines := 0, 0
	var final *protocol.AuditResponse
	for _, line := range lines {
		if line.Pair != nil {
			pairLines++
		}
		if line.Finding != nil {
			findingLines++
		}
		if line.FinalAudit != nil {
			final = line.FinalAudit
		}
	}
	if final == nil || pairLines == 0 {
		t.Fatalf("audit stream: %d pair lines, final %v", pairLines, final != nil)
	}
	if findingLines != len(final.Findings) {
		t.Fatalf("audit stream: %d finding lines, final has %d", findingLines, len(final.Findings))
	}
	_, want := post(t, f.single.URL+"/v1/audit", `{}`)
	finalRaw, err := json.Marshal(final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeAudit(t, finalRaw), normalizeAudit(t, want)) {
		t.Error("streamed audit final differs from single-binary audit")
	}
}
