package router

import (
	"context"
	"errors"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/multi"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/wiki"
)

// shard is one replica of the fleet: its index in the shard map, the
// normalized base URL, and the SDK client the router reaches it with.
type shard struct {
	index int
	addr  string
	c     *client.Client
}

// Router coordinates a wikimatchd fleet behind the single-binary /v1
// surface. Build it with New, mount Handler, and Close it on shutdown
// to stop the health poller.
type Router struct {
	shards []shard

	clientOpts     []client.Option
	handlerOpts    []service.HandlerOption
	healthInterval time.Duration
	probeTimeout   time.Duration
	streamTimeout  time.Duration
	logger         *log.Logger

	started time.Time
	metrics func() protocol.Metrics

	// langMu guards the cached fleet language set, discovered from a
	// shard's corpus stats and dropped whenever a delta lands (the
	// corpus may have grown a language).
	langMu sync.Mutex
	langs  []wiki.Language

	// healthMu guards the poller's last fleet-health observation.
	healthMu   sync.Mutex
	lastHealth *protocol.FleetHealth

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Option adjusts a Router.
type Option func(*Router)

// WithClientOptions passes SDK options (retries, hedging, HTTP client)
// to every per-shard client.
func WithClientOptions(opts ...client.Option) Option {
	return func(rt *Router) { rt.clientOpts = append(rt.clientOpts, opts...) }
}

// WithHandlerOptions passes middleware-stack options to the router's
// own HTTP surface (Handler wraps the same stack a replica runs).
func WithHandlerOptions(opts ...service.HandlerOption) Option {
	return func(rt *Router) { rt.handlerOpts = append(rt.handlerOpts, opts...) }
}

// WithHealthInterval sets the background health-poll period. 0 keeps
// the 15s default; negative disables the poller (health is then only
// probed live, per /v1/healthz request).
func WithHealthInterval(d time.Duration) Option {
	return func(rt *Router) { rt.healthInterval = d }
}

// WithProbeTimeout bounds each per-shard health probe (default 2s).
func WithProbeTimeout(d time.Duration) Option {
	return func(rt *Router) { rt.probeTimeout = d }
}

// WithStreamWriteTimeout bounds each relayed NDJSON line write
// (default 1 minute; negative disables the deadline).
func WithStreamWriteTimeout(d time.Duration) Option {
	return func(rt *Router) { rt.streamTimeout = d }
}

// WithLogger receives fleet-health transitions and routing errors.
func WithLogger(l *log.Logger) Option {
	return func(rt *Router) { rt.logger = l }
}

// New builds a router over the shard addresses, in shard-map order:
// addrs[i] must be the replica started with -shard-index i (and
// -shard-count len(addrs)), or the routed slices will not line up with
// the warm-loaded ones. Addresses without a scheme get "http://".
func New(addrs []string, opts ...Option) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("router: no shard addresses")
	}
	rt := &Router{
		healthInterval: 15 * time.Second,
		probeTimeout:   2 * time.Second,
		streamTimeout:  time.Minute,
		started:        time.Now(),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	for _, opt := range opts {
		opt(rt)
	}
	for i, addr := range addrs {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c, err := client.New(base, rt.clientOpts...)
		if err != nil {
			return nil, err
		}
		rt.shards = append(rt.shards, shard{index: i, addr: base, c: c})
	}
	if rt.healthInterval > 0 {
		go rt.poll()
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Close stops the background health poller. The Handler keeps serving;
// Close only releases the goroutine.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// Shards reports the fleet size.
func (rt *Router) Shards() int { return len(rt.shards) }

// owner returns the shard the map assigns a pair to.
func (rt *Router) owner(pair wiki.LanguagePair) *shard {
	return &rt.shards[ShardFor(pair, len(rt.shards))]
}

// Handler mounts the fleet /v1 surface — the same routes a replica
// serves, wrapped in the same middleware stack (request IDs, metrics,
// shedding), so a client cannot tell a router from a single binary
// except by the fleet-shaped healthz/metrics/delta bodies.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/match", method(http.MethodPost, rt.handleMatch))
	mux.HandleFunc("/v1/matchall", method(http.MethodPost, rt.handleMatchAll))
	mux.HandleFunc("/v1/stream", method(http.MethodPost, rt.handleStream))
	mux.HandleFunc("/v1/audit", method(http.MethodPost, rt.handleAudit))
	mux.HandleFunc("/v1/audit/stream", method(http.MethodPost, rt.handleAuditStream))
	mux.HandleFunc("/v1/corpus", method(http.MethodGet, rt.handleCorpus))
	mux.HandleFunc("/v1/corpus/delta", method(http.MethodPost, rt.handleDelta))
	mux.HandleFunc("/v1/invalidate", method(http.MethodPost, rt.handleInvalidate))
	mux.HandleFunc("/v1/healthz", method(http.MethodGet, rt.handleHealthz))
	mux.HandleFunc("/v1/metrics", method(http.MethodGet, rt.handleMetrics))
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		service.WriteEnvelope(w, protocol.Errorf(protocol.CodeNotFound, "no such endpoint %s", r.URL.Path))
	})
	h, metrics := service.WrapMiddleware(mux, rt.handlerOpts...)
	rt.metrics = metrics
	return h
}

// method guards a route's HTTP method with the structured 405.
func method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			service.WriteEnvelope(w, protocol.Errorf(protocol.CodeMethodNotAllowed,
				"method %s not allowed on %s (use %s)", r.Method, r.URL.Path, want))
			return
		}
		h(w, r)
	}
}

// shardErr classifies a per-shard call failure: a structured protocol
// error from the shard passes through untouched (the shard's envelope
// is already canonical), anything else — connection refused, timeouts,
// malformed bodies — becomes a retryable unavailable envelope naming
// the shard, so callers see where the fleet is broken.
func (rt *Router) shardErr(sh *shard, err error) *protocol.Error {
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe
	}
	if rt.logger != nil {
		rt.logger.Printf("shard %d (%s): %v", sh.index, sh.addr, err)
	}
	return protocol.Errorf(protocol.CodeUnavailable,
		"shard %d (%s) unreachable: %v", sh.index, sh.addr, err)
}

func (rt *Router) handleMatch(w http.ResponseWriter, req *http.Request) {
	var mreq protocol.MatchRequest
	if e := service.DecodeBody(req, &mreq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	r, err := mreq.Validate()
	if err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	if r.All {
		service.WriteEnvelope(w, protocol.Errorf(protocol.CodeInvalidArgument,
			"all-pairs request must be sent to /v1/matchall"))
		return
	}
	sh := rt.owner(r.Pair)
	resp, err := sh.c.Match(req.Context(), mreq)
	if err != nil {
		service.WriteEnvelope(w, rt.shardErr(sh, err))
		return
	}
	service.WriteJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleMatchAll(w http.ResponseWriter, req *http.Request) {
	var mreq protocol.MatchRequest
	if e := service.DecodeBody(req, &mreq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	if !mreq.All && (mreq.Pair != "" || mreq.Type != "") {
		service.WriteEnvelope(w, protocol.Errorf(protocol.CodeInvalidArgument,
			"pair-scoped request must be sent to /v1/match"))
		return
	}
	mreq.All = true
	r, err := mreq.Validate()
	if err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	start := time.Now()
	final, fm, e := rt.scatterGather(req.Context(), mreq, r)
	if e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	resp := service.MatchAllDTO(final, msSince(start), fm.cacheTotals())
	service.WriteJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleStream(w http.ResponseWriter, req *http.Request) {
	var mreq protocol.MatchRequest
	if e := service.DecodeBody(req, &mreq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	r, err := mreq.Validate()
	if err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	if r.Type != "" {
		service.WriteEnvelope(w, protocol.Errorf(protocol.CodeInvalidArgument,
			"single-type requests cannot stream; use /v1/match"))
		return
	}
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	if r.All {
		// Scatter-gathered batch with live progress: the same scheduler
		// and relay as /v1/matchall, line by line.
		langs, e := rt.fleetLanguages(ctx)
		if e != nil {
			service.WriteEnvelope(w, e)
			return
		}
		plan, err := multi.NewPlan(langs, r.Multi.Mode, r.Multi.Hub)
		if err != nil {
			service.WriteEnvelope(w, protocol.FromErr(err))
			return
		}
		fm := rt.fleetMatcher(mreq)
		updates := multi.StreamPlan(ctx, fm, plan, rt.batchWorkers(r, plan))
		lines := service.RelayAllStream(updates, fm.cacheTotals)
		service.WriteNDJSONStream(w, rt.streamTimeout, cancel, lines,
			func(line protocol.StreamLine) (any, bool) { return line, true })
		return
	}
	// Pair-scoped: relay the owning shard's stream verbatim.
	sh := rt.owner(r.Pair)
	st, err := sh.c.Stream(ctx, mreq)
	if err != nil {
		service.WriteEnvelope(w, rt.shardErr(sh, err))
		return
	}
	lines := make(chan protocol.StreamLine, 16)
	go func() {
		defer close(lines)
		defer st.Close()
		for st.Next() {
			select {
			case lines <- st.Line():
			case <-ctx.Done():
				return
			}
		}
		if err := st.Err(); err != nil {
			select {
			case lines <- protocol.StreamLine{Error: rt.shardErr(sh, err)}:
			case <-ctx.Done():
			}
		}
	}()
	service.WriteNDJSONStream(w, rt.streamTimeout, cancel, lines,
		func(line protocol.StreamLine) (any, bool) { return line, true })
}

// scatterGather runs one all-pairs batch across the fleet: the plan is
// resolved router-side from the fleet's language set, every planned
// pair is routed to its owning shard concurrently, and the wire
// results are reconstructed and merged through the same cluster
// builder a single binary runs. Per-pair shard failures land in their
// outcomes without aborting the batch, exactly like a local failure.
func (rt *Router) scatterGather(ctx context.Context, req protocol.MatchRequest, r protocol.Resolved) (*multi.BatchResult, *fleetMatcher, *protocol.Error) {
	langs, e := rt.fleetLanguages(ctx)
	if e != nil {
		return nil, nil, e
	}
	plan, err := multi.NewPlan(langs, r.Multi.Mode, r.Multi.Hub)
	if err != nil {
		return nil, nil, protocol.FromErr(err)
	}
	fm := rt.fleetMatcher(req)
	updates := multi.StreamPlan(ctx, fm, plan, rt.batchWorkers(r, plan))
	var final *multi.BatchResult
	for u := range updates {
		if u.Final != nil {
			final = u.Final
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, protocol.FromErr(err)
	}
	return final, fm, nil
}

// batchWorkers picks the scatter-gather concurrency: an explicit
// workers request is honored; the default is full fan-out (one worker
// per planned pair), because router-side pair work is network-bound
// waiting, not CPU — the shards bound their own compute.
func (rt *Router) batchWorkers(r protocol.Resolved, plan multi.Plan) int {
	if r.Multi.Workers > 0 {
		return r.Multi.Workers
	}
	return len(plan.Pairs)
}

// fleetMatcher adapts the fleet to multi.PairMatcher: each pair is one
// /v1/match against its owning shard, reconstructed into the core
// result the cluster builder consumes. It also collects each shard's
// latest cache-stats snapshot, so the merged response can report fleet
// cache totals without extra round trips.
type fleetMatcher struct {
	rt   *Router
	base protocol.MatchRequest

	mu    sync.Mutex
	cache map[int]protocol.CacheStats
}

func (rt *Router) fleetMatcher(req protocol.MatchRequest) *fleetMatcher {
	// Only the threshold overrides survive into the per-pair requests;
	// batch fields (all/mode/hub/workers) stay router-side.
	return &fleetMatcher{
		rt:    rt,
		base:  protocol.MatchRequest{TSim: req.TSim, TLSI: req.TLSI, TEg: req.TEg},
		cache: make(map[int]protocol.CacheStats),
	}
}

// Match implements multi.PairMatcher over the fleet.
func (f *fleetMatcher) Match(ctx context.Context, pair wiki.LanguagePair) (*core.Result, error) {
	req := f.base
	req.Pair = pair.String()
	sh := f.rt.owner(pair)
	resp, err := sh.c.Match(ctx, req)
	if err != nil {
		return nil, f.rt.shardErr(sh, err)
	}
	f.mu.Lock()
	f.cache[sh.index] = resp.Cache
	f.mu.Unlock()
	return resp.Result()
}

// cacheTotals sums the latest cache snapshot seen from each shard
// during the batch — the fleet-wide equivalent of a session's
// CacheStats.
func (f *fleetMatcher) cacheTotals() protocol.CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out protocol.CacheStats
	for _, cs := range f.cache {
		out.PairEntries += cs.PairEntries
		out.TypeEntries += cs.TypeEntries
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Failures += cs.Failures
		out.RestoredPairs += cs.RestoredPairs
		out.RestoredTypes += cs.RestoredTypes
	}
	return out
}

// fleetLanguages discovers (and caches) the corpus language set from
// the first shard that answers its stats. Every shard serves the full
// corpus — only artifacts are sharded — so any answer is
// authoritative. The cache is dropped when a delta lands.
func (rt *Router) fleetLanguages(ctx context.Context) ([]wiki.Language, *protocol.Error) {
	rt.langMu.Lock()
	cached := rt.langs
	rt.langMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	var lastErr *protocol.Error
	for i := range rt.shards {
		sh := &rt.shards[i]
		stats, err := sh.c.Stats(ctx)
		if err != nil {
			lastErr = rt.shardErr(sh, err)
			continue
		}
		langs := make([]wiki.Language, 0, len(stats.Corpus.Articles))
		for lang := range stats.Corpus.Articles {
			langs = append(langs, lang)
		}
		sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })
		rt.langMu.Lock()
		rt.langs = langs
		rt.langMu.Unlock()
		return langs, nil
	}
	if lastErr == nil {
		lastErr = protocol.Errorf(protocol.CodeUnavailable, "no shard answered corpus stats")
	}
	return nil, lastErr
}

// invalidateLanguages drops the cached language set after a corpus
// mutation.
func (rt *Router) invalidateLanguages() {
	rt.langMu.Lock()
	rt.langs = nil
	rt.langMu.Unlock()
}

func (rt *Router) handleCorpus(w http.ResponseWriter, req *http.Request) {
	// Corpus and config come from the first healthy shard (identical
	// everywhere); cache stats are summed across every shard that
	// answers, since each holds a disjoint artifact slice.
	type answer struct {
		stats *protocol.StatsResponse
		err   *protocol.Error
	}
	answers := make([]answer, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &rt.shards[i]
			stats, err := sh.c.Stats(req.Context())
			if err != nil {
				answers[i] = answer{err: rt.shardErr(sh, err)}
				return
			}
			answers[i] = answer{stats: stats}
		}(i)
	}
	wg.Wait()
	var resp *protocol.StatsResponse
	var cache protocol.CacheStats
	var lastErr *protocol.Error
	for _, a := range answers {
		if a.err != nil {
			lastErr = a.err
			continue
		}
		if resp == nil {
			resp = a.stats
		}
		cache.PairEntries += a.stats.Cache.PairEntries
		cache.TypeEntries += a.stats.Cache.TypeEntries
		cache.Hits += a.stats.Cache.Hits
		cache.Misses += a.stats.Cache.Misses
		cache.Failures += a.stats.Cache.Failures
		cache.RestoredPairs += a.stats.Cache.RestoredPairs
		cache.RestoredTypes += a.stats.Cache.RestoredTypes
	}
	if resp == nil {
		service.WriteEnvelope(w, lastErr)
		return
	}
	resp.Cache = cache
	service.WriteJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleDelta(w http.ResponseWriter, req *http.Request) {
	var dreq protocol.DeltaRequest
	if e := service.DecodeBody(req, &dreq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	// Validate router-side so a malformed delta is rejected with the
	// canonical envelope before touching any shard.
	if _, err := dreq.Validate(); err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	start := time.Now()
	shards := make([]protocol.ShardDelta, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &rt.shards[i]
			sd := protocol.ShardDelta{Shard: sh.index, Addr: sh.addr}
			resp, err := sh.c.Delta(req.Context(), dreq)
			if err != nil {
				sd.Error = rt.shardErr(sh, err)
			} else {
				sd.Response = resp
			}
			shards[i] = sd
		}(i)
	}
	wg.Wait()
	rt.invalidateLanguages()

	ok := 0
	fingerprint, consistent := "", true
	for _, sd := range shards {
		if sd.Error != nil {
			continue
		}
		ok++
		if fingerprint == "" {
			fingerprint = sd.Response.Fingerprint
		} else if sd.Response.Fingerprint != fingerprint {
			consistent = false
		}
	}
	status := protocol.FleetOK
	switch {
	case ok == 0:
		status = protocol.FleetDown
	case ok < len(shards):
		status = protocol.FleetDegraded
	}
	// A partial fan-out leaves the fleet's corpora diverged until the
	// failed shards take the delta: report it, loudly.
	if ok < len(shards) {
		consistent = false
	}
	service.WriteJSON(w, http.StatusOK, protocol.FleetDeltaResponse{
		Status:     status,
		Consistent: consistent && ok > 0,
		Shards:     shards,
		ElapsedMS:  msSince(start),
	})
}

func (rt *Router) handleInvalidate(w http.ResponseWriter, req *http.Request) {
	var ireq protocol.InvalidateRequest
	if e := service.DecodeBody(req, &ireq); e != nil {
		service.WriteEnvelope(w, e)
		return
	}
	if _, err := ireq.Validate(); err != nil {
		service.WriteEnvelope(w, protocol.FromErr(err))
		return
	}
	results := make([]*protocol.InvalidateResponse, len(rt.shards))
	errs := make([]*protocol.Error, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &rt.shards[i]
			resp, err := sh.c.Invalidate(req.Context(), ireq.Lang)
			if err != nil {
				errs[i] = rt.shardErr(sh, err)
				return
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()
	var total protocol.InvalidateResponse
	for i := range rt.shards {
		if errs[i] != nil {
			// Partial invalidation is worse than none to reason about;
			// surface the failure and let the caller retry the fleet.
			service.WriteEnvelope(w, errs[i])
			return
		}
		total.Dropped += results[i].Dropped
		total.Pairs += results[i].Pairs
		total.Types += results[i].Types
	}
	service.WriteJSON(w, http.StatusOK, total)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := rt.probeFleet(req.Context())
	rt.storeHealth(&h)
	service.WriteJSON(w, http.StatusOK, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	out := protocol.FleetMetrics{Shards: make([]protocol.ShardMetrics, len(rt.shards))}
	if rt.metrics != nil {
		out.Router = rt.metrics()
	}
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &rt.shards[i]
			sm := protocol.ShardMetrics{Shard: sh.index, Addr: sh.addr}
			m, err := sh.c.Metrics(req.Context())
			if err != nil {
				sm.Error = rt.shardErr(sh, err).Error()
			} else {
				sm.Metrics = m
			}
			out.Shards[i] = sm
		}(i)
	}
	wg.Wait()
	service.WriteJSON(w, http.StatusOK, out)
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
