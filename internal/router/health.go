package router

import (
	"context"
	"time"

	"repro/internal/protocol"
)

// probeFleet probes every shard's /v1/healthz concurrently, each under
// its own probe timeout, and folds the answers into one fleet view:
// FleetOK when every shard answered, FleetDegraded when some did,
// FleetDown when none did.
func (rt *Router) probeFleet(ctx context.Context) protocol.FleetHealth {
	shards := make([]protocol.ShardHealth, len(rt.shards))
	done := make(chan int, len(rt.shards))
	for i := range rt.shards {
		go func(i int) {
			defer func() { done <- i }()
			sh := &rt.shards[i]
			out := protocol.ShardHealth{Shard: sh.index, Addr: sh.addr}
			pctx, cancel := context.WithTimeout(ctx, rt.probeTimeout)
			defer cancel()
			h, err := sh.c.Healthz(pctx)
			if err != nil {
				out.Status = protocol.FleetDown
				out.Error = err.Error()
			} else {
				out.Status = h.Status
				out.Health = h
			}
			shards[i] = out
		}(i)
	}
	for range rt.shards {
		<-done
	}

	healthy := 0
	for _, s := range shards {
		if s.Status == "ok" {
			healthy++
		}
	}
	status := protocol.FleetOK
	switch {
	case healthy == 0:
		status = protocol.FleetDown
	case healthy < len(shards):
		status = protocol.FleetDegraded
	}
	return protocol.FleetHealth{
		Status:        status,
		UptimeSeconds: time.Since(rt.started).Seconds(),
		ShardsTotal:   len(shards),
		ShardsHealthy: healthy,
		Shards:        shards,
	}
}

// storeHealth records the latest fleet observation and logs status
// transitions (ok → degraded → down and back).
func (rt *Router) storeHealth(h *protocol.FleetHealth) {
	rt.healthMu.Lock()
	prev := rt.lastHealth
	rt.lastHealth = h
	rt.healthMu.Unlock()
	if rt.logger != nil && (prev == nil || prev.Status != h.Status) {
		rt.logger.Printf("fleet health: %s (%d/%d shards healthy)",
			h.Status, h.ShardsHealthy, h.ShardsTotal)
	}
}

// Health returns the most recent fleet-health observation — from the
// background poller or the last /v1/healthz probe — or nil before the
// first one.
func (rt *Router) Health() *protocol.FleetHealth {
	rt.healthMu.Lock()
	defer rt.healthMu.Unlock()
	return rt.lastHealth
}

// poll drives the background health loop until Close.
func (rt *Router) poll() {
	defer close(rt.done)
	ticker := time.NewTicker(rt.healthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		h := rt.probeFleet(context.Background())
		rt.storeHealth(&h)
	}
}
