package router

import (
	"testing"

	"repro/internal/wiki"
)

// TestShardForDeterministic: the map is orientation-independent, stable
// across calls, and in range.
func TestShardForDeterministic(t *testing.T) {
	pairs := []wiki.LanguagePair{
		{A: "pt", B: "en"}, {A: "vi", B: "en"}, {A: "pt", B: "vi"},
		{A: "de", B: "fr"}, {A: "es", B: "en"}, {A: "ja", B: "ko"},
	}
	for count := 1; count <= 5; count++ {
		for _, p := range pairs {
			got := ShardFor(p, count)
			if got < 0 || got >= count {
				t.Fatalf("ShardFor(%s, %d) = %d out of range", p, count, got)
			}
			flipped := wiki.LanguagePair{A: p.B, B: p.A}
			if ShardFor(flipped, count) != got {
				t.Errorf("ShardFor not orientation-independent for %s among %d", p, count)
			}
			if ShardFor(p, count) != got {
				t.Errorf("ShardFor unstable for %s among %d", p, count)
			}
		}
	}
	if ShardFor(wiki.PtEn, 1) != 0 || ShardFor(wiki.PtEn, 0) != 0 {
		t.Error("degenerate shard counts must map to shard 0")
	}
}

// TestShardForSeparatesConcatenations: the implicit NUL separator keeps
// pairs with identical concatenations apart (the hash of "ab"+"c" must
// not equal "a"+"bc").
func TestShardForSeparatesConcatenations(t *testing.T) {
	a := wiki.LanguagePair{A: "ab", B: "c"}
	b := wiki.LanguagePair{A: "a", B: "bc"}
	const count = 1 << 16 // wide modulus: a collision here means the hashes agree
	if ShardFor(a, count) == ShardFor(b, count) {
		t.Error("concatenation-colliding pairs hash identically; separator is broken")
	}
}

// TestShardForHyphenatedCodes: the map hashes the two side strings
// separately (never a "-"-joined rendering), so hyphen-bearing edition
// codes behave exactly like plain ones: orientation-independent, in
// range, and distinct from pairs whose hyphen-joined renderings would
// collide ("zh-min"+"nan" vs "zh"+"min-nan").
func TestShardForHyphenatedCodes(t *testing.T) {
	pairs := []wiki.LanguagePair{
		{A: "zh-min-nan", B: "en"}, {A: "be-tarask", B: "en"},
		{A: "nds-nl", B: "zh-min-nan"},
	}
	for count := 1; count <= 5; count++ {
		for _, p := range pairs {
			got := ShardFor(p, count)
			if got < 0 || got >= count {
				t.Fatalf("ShardFor(%s, %d) = %d out of range", p, count, got)
			}
			if ShardFor(wiki.LanguagePair{A: p.B, B: p.A}, count) != got {
				t.Errorf("ShardFor not orientation-independent for %s among %d", p, count)
			}
		}
	}
	a := wiki.LanguagePair{A: "zh-min", B: "nan"}
	b := wiki.LanguagePair{A: "zh", B: "min-nan"}
	const wide = 1 << 16
	if ShardFor(a, wide) == ShardFor(b, wide) {
		t.Error("hyphen-joined renderings collide; shard map must hash sides separately")
	}
}

// TestOwnedPartition: across every shard, Owned covers each pair
// exactly once, and PairsFor reproduces the same partition.
func TestOwnedPartition(t *testing.T) {
	pairs := []wiki.LanguagePair{
		{A: "pt", B: "en"}, {A: "vi", B: "en"}, {A: "pt", B: "vi"},
		{A: "de", B: "en"}, {A: "fr", B: "en"}, {A: "de", B: "fr"},
	}
	const count = 3
	owners := make([]func(wiki.LanguagePair) bool, count)
	for i := range owners {
		owners[i] = Owned(i, count)
	}
	for _, p := range pairs {
		n := 0
		for _, owned := range owners {
			if owned(p) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("pair %s owned by %d shards, want exactly 1", p, n)
		}
	}
	partition := PairsFor(pairs, count)
	total := 0
	for i, slice := range partition {
		total += len(slice)
		for _, p := range slice {
			if ShardFor(p, count) != i {
				t.Errorf("PairsFor put %s on shard %d, ShardFor says %d", p, i, ShardFor(p, count))
			}
		}
	}
	if total != len(pairs) {
		t.Errorf("partition covers %d pairs, want %d", total, len(pairs))
	}
}

// TestShardMapSpread: with a healthy number of synthetic pairs, no
// shard of a 3-way map ends up empty — a weak but real guard against a
// degenerate hash.
func TestShardMapSpread(t *testing.T) {
	langs := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	var pairs []wiki.LanguagePair
	for i, a := range langs {
		for _, b := range langs[i+1:] {
			pairs = append(pairs, wiki.LanguagePair{A: wiki.Language(a), B: wiki.Language(b)})
		}
	}
	partition := PairsFor(pairs, 3)
	for i, slice := range partition {
		if len(slice) == 0 {
			t.Errorf("shard %d owns no pairs out of %d", i, len(pairs))
		}
	}
}
