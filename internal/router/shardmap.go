// Package router is the fleet coordinator of wikimatchd: it fronts N
// replica shards behind the same /v1 surface a single binary serves.
// A deterministic shard map assigns every canonical language pair (and
// with it the pair's type artifacts) to exactly one shard; unary pair
// requests are routed to their owner, all-pairs batches are
// scatter-gathered across the fleet and merged through the same cluster
// builder a single binary runs, and corpus deltas fan out to every
// shard. Replicas started with the matching -shard-index/-shard-count
// filter warm-load only the slice of the snapshot the map assigns them.
package router

import (
	"sort"

	"repro/internal/wiki"
)

// fnv-1a 64-bit parameters (hash/fnv computes the same function; the
// constants are inlined so the mapping is readably self-contained — the
// replica-side filter and any out-of-process tooling must reproduce it
// bit for bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardFor maps a language pair to the index of the shard owning it
// among count shards. The hash runs over the lexicographically sorted
// language codes, so the mapping is orientation-independent: pt-en and
// en-pt, however a plan orients them, land on the same shard, and a
// pair's placement never depends on the batch mode or hub that asked
// for it. FNV-1a is used for its even small-key distribution and
// trivial reimplementation anywhere else the map is needed.
func ShardFor(pair wiki.LanguagePair, count int) int {
	if count <= 1 {
		return 0
	}
	a, b := string(pair.A), string(pair.B)
	if b < a {
		a, b = b, a
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= fnvPrime64
	}
	h ^= 0 // the NUL separator keeps ("ab","c") and ("a","bc") distinct
	h *= fnvPrime64
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return int(h % uint64(count))
}

// Owned returns the ownership predicate of shard index among count —
// the keep function a replica passes to service.RestoreFiltered and
// service.WithShardGate so it loads and serves exactly the slice the
// router will send it.
func Owned(index, count int) func(wiki.LanguagePair) bool {
	return func(p wiki.LanguagePair) bool { return ShardFor(p, count) == index }
}

// PairsFor lists, sorted canonically, the pairs of a plan owned by each
// shard: partition[i] holds shard i's slice. The router uses it for
// logging and tests; the scatter-gather itself routes pair by pair.
func PairsFor(pairs []wiki.LanguagePair, count int) [][]wiki.LanguagePair {
	if count < 1 {
		count = 1
	}
	partition := make([][]wiki.LanguagePair, count)
	for _, p := range pairs {
		i := ShardFor(p, count)
		partition[i] = append(partition[i], p)
	}
	for _, slice := range partition {
		sort.Slice(slice, func(i, j int) bool { return slice[i].String() < slice[j].String() })
	}
	return partition
}
