// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4, Section 5, Appendices A–C): one runner per
// experiment, each returning the same rows/series the paper reports.
// The runners are shared by cmd/benchall and the repository's top-level
// benchmarks.
package experiments

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// Setup is a generated corpus with its ground truth and the per-pair
// plumbing every experiment needs.
type Setup struct {
	Corpus *wiki.Corpus
	Truth  *synth.GroundTruth
	Cfg    synth.Config

	dicts map[wiki.LanguagePair]*dict.Dictionary
	cases map[wiki.LanguagePair][]*TypeCase
}

// TypeCase is one (entity type, language pair) evaluation unit: the
// localized type names, the similarity workspace, attribute frequencies,
// and the ground-truth correspondence set G.
type TypeCase struct {
	Pair         wiki.LanguagePair
	Canon        string
	TypeA, TypeB string
	TD           *sim.TypeData
	FreqA, FreqB map[string]float64
	Truth        eval.Correspondences
	TypeTruth    *synth.TypeTruth
}

// NewSetup generates the corpus and indexes the evaluation units.
func NewSetup(cfg synth.Config) (*Setup, error) {
	c, truth, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	s := &Setup{
		Corpus: c, Truth: truth, Cfg: cfg,
		dicts: make(map[wiki.LanguagePair]*dict.Dictionary),
		cases: make(map[wiki.LanguagePair][]*TypeCase),
	}
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		s.dicts[pair] = dict.Build(c, pair.A, pair.B)
		for _, tp := range core.MatchEntityTypes(c, pair) {
			canon, ok := truth.CanonType(pair.A, tp[0])
			if !ok {
				continue
			}
			tt := truth.Types[canon]
			freqA, freqB := eval.AttributeFrequencies(c, pair, tp[0], tp[1])
			tc := &TypeCase{
				Pair: pair, Canon: canon, TypeA: tp[0], TypeB: tp[1],
				TD:    sim.BuildTypeData(c, pair, tp[0], tp[1], s.dicts[pair]),
				FreqA: freqA, FreqB: freqB,
				Truth:     eval.TruthPairs(freqA, freqB, pair, tt.Correct),
				TypeTruth: tt,
			}
			s.cases[pair] = append(s.cases[pair], tc)
		}
		sort.Slice(s.cases[pair], func(i, j int) bool {
			return s.cases[pair][i].Canon < s.cases[pair][j].Canon
		})
	}
	return s, nil
}

// Pairs returns the evaluated language pairs in paper order.
func (s *Setup) Pairs() []wiki.LanguagePair {
	return []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
}

// Cases returns the per-type evaluation units for a pair, sorted by
// canonical type.
func (s *Setup) Cases(pair wiki.LanguagePair) []*TypeCase { return s.cases[pair] }

// Dict returns the pair's cross-language-link dictionary.
func (s *Setup) Dict(pair wiki.LanguagePair) *dict.Dictionary { return s.dicts[pair] }

// RunWikiMatch aligns one case with a given configuration and returns
// the derived cross-language correspondences.
func (s *Setup) RunWikiMatch(tc *TypeCase, cfg core.Config) eval.Correspondences {
	m := core.NewMatcher(cfg)
	tr := m.MatchType(s.Corpus, tc.Pair, tc.TypeA, tc.TypeB, s.dicts[tc.Pair])
	out := make(eval.Correspondences)
	for a, bs := range tr.Cross {
		for b := range bs {
			out.Add(a, b)
		}
	}
	return out
}

// EvaluateWeighted scores derived correspondences for one case with the
// paper's weighted metrics.
func (s *Setup) EvaluateWeighted(tc *TypeCase, derived eval.Correspondences) eval.PRF {
	return eval.Weighted(derived, tc.Truth, tc.FreqA, tc.FreqB)
}

// LabelTranslator builds the simulated machine-translation system for
// attribute labels from the lexicon: template-correct translations plus
// the literal renderings the paper reports Google Translator producing
// (e.g. "diễn viên" → "actor"). errRate is the chance the literal wins.
func (s *Setup) LabelTranslator(errRate float64) *dict.LabelTranslator {
	lt := dict.NewLabelTranslator(errRate, s.Cfg.Seed)
	for _, spec := range synth.TypeSpecs() {
		for _, attr := range spec.Attrs {
			enNames := attr.Names[wiki.English]
			if len(enNames) == 0 {
				continue
			}
			for _, lang := range []wiki.Language{wiki.Portuguese, wiki.Vietnamese} {
				for _, n := range attr.Names[lang] {
					lt.Add(n.Name, enNames[0].Name, attr.Literal)
				}
			}
		}
	}
	return lt
}
