package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/wiki"
)

// OverlapCorrelation reproduces the correlation analysis of Section 4.1
// ("Effect of Cross-Language Heterogeneity"): for each approach, the
// Pearson correlation between a type's cross-language attribute overlap
// (Table 5) and the approach's F-measure on that type. The paper reports
// positive coefficients for every approach — results are better for
// types that are more homogeneous across languages.
type OverlapCorrelation struct {
	Pair                        wiki.LanguagePair
	WikiMatch, Bouma, COMA, LSI float64
}

// OverlapCorrelations computes the per-approach overlap↔F Pearson
// coefficients over the Pt-En types (the Vn-En side has only four types,
// too few for a meaningful coefficient, so it is pooled in).
func (s *Setup) OverlapCorrelations(cfg core.Config) []OverlapCorrelation {
	lt := s.LabelTranslator(1.0)
	var out []OverlapCorrelation
	for _, pair := range s.Pairs() {
		comaCfg := baselines.COMAConfig{Name: true, Instance: true,
			TranslateNames: true, TranslateInstances: true, Threshold: 0.01}
		if pair == wiki.VnEn {
			comaCfg = baselines.COMAConfig{Instance: true, TranslateInstances: true, Threshold: 0.01}
		}
		var overlaps []float64
		series := map[string][]float64{}
		for _, tc := range s.Cases(pair) {
			overlaps = append(overlaps, eval.Overlap(s.Corpus, pair, tc.TypeA, tc.TypeB, tc.TypeTruth.Correct))
			series["wm"] = append(series["wm"], s.EvaluateWeighted(tc, s.RunWikiMatch(tc, cfg)).F)
			series["bouma"] = append(series["bouma"], s.EvaluateWeighted(tc,
				baselines.Bouma(s.Corpus, pair, tc.TypeA, tc.TypeB, baselines.DefaultBoumaConfig())).F)
			series["coma"] = append(series["coma"], s.EvaluateWeighted(tc, baselines.COMA(tc.TD, lt, comaCfg)).F)
			series["lsi"] = append(series["lsi"], s.EvaluateWeighted(tc, baselines.LSITopK(tc.TD, cfg.LSIRank, 1)).F)
		}
		out = append(out, OverlapCorrelation{
			Pair:      pair,
			WikiMatch: eval.Pearson(overlaps, series["wm"]),
			Bouma:     eval.Pearson(overlaps, series["bouma"]),
			COMA:      eval.Pearson(overlaps, series["coma"]),
			LSI:       eval.Pearson(overlaps, series["lsi"]),
		})
	}
	return out
}
