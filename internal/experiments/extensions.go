package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flooding"
	"repro/internal/sim"
	"repro/internal/wiki"
	"repro/internal/ziggurat"
)

// ExtensionRow compares WikiMatch with the matchers implemented beyond
// the paper's evaluation: similarity flooding (the conclusion's
// future-work item), a correlation-only holistic matcher, and a
// Ziggurat-style self-supervised classifier (the Section 6 comparison
// the authors could not run).
type ExtensionRow struct {
	Name       string
	PtEn, VnEn eval.PRF
}

// Extensions runs the extension comparison, averaged over types.
func (s *Setup) Extensions(cfg core.Config) []ExtensionRow {
	// Ziggurat trains per language pair over that pair's types.
	zigModels := map[wiki.LanguagePair]*ziggurat.Model{}
	for _, pair := range s.Pairs() {
		var tds []*sim.TypeData
		for _, tc := range s.Cases(pair) {
			tds = append(tds, tc.TD)
		}
		zigModels[pair] = ziggurat.Train(tds, ziggurat.DefaultConfig())
	}
	matchers := []struct {
		name string
		run  func(tc *TypeCase) eval.Correspondences
	}{
		{"WikiMatch", func(tc *TypeCase) eval.Correspondences {
			return s.RunWikiMatch(tc, cfg)
		}},
		{"Similarity flooding", func(tc *TypeCase) eval.Correspondences {
			return flooding.Match(tc.TD, flooding.DefaultConfig())
		}},
		{"Holistic correlation", func(tc *TypeCase) eval.Correspondences {
			return baselines.Holistic(tc.TD, baselines.DefaultHolisticConfig())
		}},
		{"Ziggurat-style classifier", func(tc *TypeCase) eval.Correspondences {
			return zigModels[tc.Pair].Match(tc.TD, ziggurat.DefaultConfig().Threshold)
		}},
	}
	var out []ExtensionRow
	for _, m := range matchers {
		row := ExtensionRow{Name: m.name}
		for _, pair := range s.Pairs() {
			var rows []eval.PRF
			for _, tc := range s.Cases(pair) {
				rows = append(rows, s.EvaluateWeighted(tc, m.run(tc)))
			}
			if pair == wiki.PtEn {
				row.PtEn = eval.Average(rows)
			} else {
				row.VnEn = eval.Average(rows)
			}
		}
		out = append(out, row)
	}
	return out
}

// RenderExtensions writes the extension comparison.
func RenderExtensions(w io.Writer, rows []ExtensionRow) {
	fmt.Fprintln(w, "Extensions: fixed-point and correlation-only matchers (beyond the paper)")
	fmt.Fprintf(w, "%-24s | %-17s | %-17s\n", "matcher", "Portuguese-English", "Vietnamese-English")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			r.Name,
			r.PtEn.Precision, r.PtEn.Recall, r.PtEn.F,
			r.VnEn.Precision, r.VnEn.Recall, r.VnEn.F)
	}
}

// RenderOverlapCorrelations writes the Section 4.1 correlation analysis.
func RenderOverlapCorrelations(w io.Writer, rows []OverlapCorrelation) {
	fmt.Fprintln(w, "Overlap↔F Pearson correlation per approach (Section 4.1 analysis)")
	fmt.Fprintf(w, "%-6s %10s %8s %8s %8s\n", "pair", "WikiMatch", "Bouma", "COMA++", "LSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10.2f %8.2f %8.2f %8.2f\n", r.Pair, r.WikiMatch, r.Bouma, r.COMA, r.LSI)
	}
}
