package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lsi"
	"repro/internal/query"
	"repro/internal/wiki"
)

// ---------------------------------------------------------------- Figure 3

// Figure3Bar is one bar group of Figure 3: precision and recall of
// WikiMatch with (WM) and without (WM*) ReviseUncertain, under one
// removed feature.
type Figure3Bar struct {
	Pair    wiki.LanguagePair
	Removed string // "vsim", "lsim", "LSI"
	WM, WMx eval.PRF
}

// Figure3 reproduces the ReviseUncertain-impact study.
func (s *Setup) Figure3(base core.Config) []Figure3Bar {
	type rm struct {
		name string
		mod  func(core.Config) core.Config
	}
	removals := []rm{
		{"vsim", func(c core.Config) core.Config { c.DisableVSim = true; return c }},
		{"lsim", func(c core.Config) core.Config { c.DisableLSim = true; return c }},
		{"LSI", func(c core.Config) core.Config { c.DisableLSI = true; return c }},
	}
	var out []Figure3Bar
	for _, pair := range s.Pairs() {
		for _, r := range removals {
			cfg := r.mod(base)
			noRevise := cfg
			noRevise.DisableRevise = true
			out = append(out, Figure3Bar{
				Pair:    pair,
				Removed: r.name,
				WM:      s.averageOverTypes(pair, cfg),
				WMx:     s.averageOverTypes(pair, noRevise),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------- Figure 4

// Figure4 reproduces the case study's cumulative-gain curves. It runs
// full WikiMatch for both pairs, translates the Table 4 workload, and
// scores answers with the relevance oracle.
func (s *Setup) Figure4(cfg core.Config, k int) ([]query.CGSeries, error) {
	m := core.NewMatcher(cfg)
	resPt := m.Match(s.Corpus, wiki.PtEn)
	resVn := m.Match(s.Corpus, wiki.VnEn)
	return query.RunCaseStudy(s.Corpus, s.Truth, resPt, resVn, k)
}

// ---------------------------------------------------------------- Figure 5

// Figure5Point is one point of the threshold-sensitivity curves: the
// F-measure (averaged over types) at one threshold setting.
type Figure5Point struct {
	Pair      wiki.LanguagePair
	Threshold string // "Tsim" or "TLSI"
	Value     float64
	F         float64
}

// Figure5 sweeps Tsim and TLSI from 0 to 0.9 (the other threshold held
// at its default), reproducing the stability analysis of Appendix B.
func (s *Setup) Figure5(base core.Config) []Figure5Point {
	var out []Figure5Point
	for _, pair := range s.Pairs() {
		for v := 0.0; v <= 0.91; v += 0.1 {
			cfg := base
			cfg.TSim = v
			out = append(out, Figure5Point{Pair: pair, Threshold: "Tsim", Value: v,
				F: s.averageOverTypes(pair, cfg).F})
		}
		for v := 0.0; v <= 0.91; v += 0.1 {
			cfg := base
			cfg.TLSI = v
			out = append(out, Figure5Point{Pair: pair, Threshold: "TLSI", Value: v,
				F: s.averageOverTypes(pair, cfg).F})
		}
	}
	return out
}

// ---------------------------------------------------------------- Figure 6

// Figure6Row is the LSI top-k baseline at one k.
type Figure6Row struct {
	Pair wiki.LanguagePair
	K    int
	PRF  eval.PRF
}

// Figure6 evaluates LSI top-k for k ∈ {1, 3, 5, 10}. The LSI model is
// built once per type and shared across the k sweep.
func (s *Setup) Figure6(cfg core.Config) []Figure6Row {
	var out []Figure6Row
	for _, pair := range s.Pairs() {
		models := make([]*lsi.Model, len(s.Cases(pair)))
		for i, tc := range s.Cases(pair) {
			models[i] = lsi.Build(tc.TD.Duals, cfg.LSIRank, tc.TD.Attrs...)
		}
		for _, k := range []int{1, 3, 5, 10} {
			var rows []eval.PRF
			for i, tc := range s.Cases(pair) {
				rows = append(rows, s.EvaluateWeighted(tc, baselines.LSITopKModel(models[i], tc.TD, k)))
			}
			out = append(out, Figure6Row{Pair: pair, K: k, PRF: eval.Average(rows)})
		}
	}
	return out
}

// ---------------------------------------------------------------- Figure 7

// Figure7Row is one COMA++ configuration's weighted scores.
type Figure7Row struct {
	Pair   wiki.LanguagePair
	Config string
	PRF    eval.PRF
}

// Figure7 evaluates the COMA++ configurations of Appendix C: N, I, NI,
// N+G, I+D, NG+ID.
func (s *Setup) Figure7() []Figure7Row {
	lt := s.LabelTranslator(1.0)
	var out []Figure7Row
	for _, pair := range s.Pairs() {
		for _, cfg := range baselines.COMAConfigs(0.01) {
			var rows []eval.PRF
			for _, tc := range s.Cases(pair) {
				rows = append(rows, s.EvaluateWeighted(tc, baselines.COMA(tc.TD, lt, cfg)))
			}
			out = append(out, Figure7Row{Pair: pair, Config: cfg.Label(), PRF: eval.Average(rows)})
		}
	}
	return out
}
