package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/query"
)

// RenderTable1 writes the sample alignments.
func RenderTable1(w io.Writer, rows []AlignmentExample) {
	fmt.Fprintln(w, "Table 1: sample alignments identified by WikiMatch")
	cur := ""
	for _, r := range rows {
		head := fmt.Sprintf("%s / %s", r.Pair, r.Canon)
		if head != cur {
			fmt.Fprintf(w, "-- %s\n", head)
			cur = head
		}
		mark := " "
		if !r.OK {
			mark = "✗"
		}
		fmt.Fprintf(w, "  %-28s ~ %-24s %s\n", r.A, r.B, mark)
	}
}

// RenderTable2 writes the effectiveness comparison.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: weighted P/R/F per entity type")
	fmt.Fprintf(w, "%-6s %-20s | %-17s | %-17s | %-17s | %-17s\n",
		"pair", "type", "WikiMatch", "Bouma", "COMA++", "LSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-20s | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			r.Pair, r.Canon,
			r.WikiMatch.Precision, r.WikiMatch.Recall, r.WikiMatch.F,
			r.Bouma.Precision, r.Bouma.Recall, r.Bouma.F,
			r.COMA.Precision, r.COMA.Recall, r.COMA.F,
			r.LSI.Precision, r.LSI.Recall, r.LSI.F)
	}
}

// RenderTable3 writes the component-contribution study.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: contribution of different components (avg over types)")
	fmt.Fprintf(w, "%-32s | %-17s | %-17s\n", "configuration", "Portuguese-English", "Vietnamese-English")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			r.Name,
			r.PtEn.Precision, r.PtEn.Recall, r.PtEn.F,
			r.VnEn.Precision, r.VnEn.Recall, r.VnEn.F)
	}
}

// RenderTable5 writes the overlap analysis.
func RenderTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: attribute overlap in cross-linked infoboxes")
	fmt.Fprintf(w, "%-22s %8s %8s\n", "type", "Pt-En", "Vn-En")
	for _, r := range rows {
		vn := "   -"
		if r.HasVn {
			vn = fmt.Sprintf("%3.0f%%", r.VnEn*100)
		}
		fmt.Fprintf(w, "%-22s %7.0f%% %8s\n", r.Canon, r.PtEn*100, vn)
	}
}

// RenderTable6 writes the macro-averaged comparison.
func RenderTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "Table 6: macro-averaging results")
	fmt.Fprintf(w, "%-6s | %-17s | %-17s | %-17s | %-17s\n",
		"pair", "WikiMatch", "Bouma", "COMA++", "LSI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			r.Pair,
			r.WikiMatch.Precision, r.WikiMatch.Recall, r.WikiMatch.F,
			r.Bouma.Precision, r.Bouma.Recall, r.Bouma.F,
			r.COMA.Precision, r.COMA.Recall, r.COMA.F,
			r.LSI.Precision, r.LSI.Recall, r.LSI.F)
	}
}

// RenderTable7 writes the MAP comparison of correlation measures.
func RenderTable7(w io.Writer, rows []Table7Row) {
	fmt.Fprintln(w, "Table 7: MAP for different sources of correlation")
	fmt.Fprintf(w, "%-10s %8s %8s\n", "measure", "Pt-En", "Vn-En")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.2f %8.2f\n", r.Measure, r.PtEn, r.VnEn)
	}
}

// RenderFigure3 writes the ReviseUncertain impact bars.
func RenderFigure3(w io.Writer, bars []Figure3Bar) {
	fmt.Fprintln(w, "Figure 3: impact of ReviseUncertain (WM* = without it)")
	fmt.Fprintf(w, "%-6s %-6s | %-13s | %-13s\n", "pair", "no", "WM*  (P, R)", "WM   (P, R)")
	for _, b := range bars {
		fmt.Fprintf(w, "%-6s %-6s | %5.2f %5.2f   | %5.2f %5.2f\n",
			b.Pair, b.Removed, b.WMx.Precision, b.WMx.Recall, b.WM.Precision, b.WM.Recall)
	}
}

// RenderFigure4 writes the cumulative-gain curves.
func RenderFigure4(w io.Writer, series []query.CGSeries) {
	fmt.Fprintln(w, "Figure 4: cumulative gain of k answers (Table 4 workload)")
	fmt.Fprintf(w, "%-8s", "k")
	for _, s := range series {
		fmt.Fprintf(w, " %8s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for k := 0; k < len(series[0].CG); k++ {
		fmt.Fprintf(w, "%-8d", k+1)
		for _, s := range series {
			fmt.Fprintf(w, " %8.1f", s.CG[k])
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure5 writes the threshold-sensitivity curves.
func RenderFigure5(w io.Writer, points []Figure5Point) {
	fmt.Fprintln(w, "Figure 5: impact of different thresholds (F-measure)")
	fmt.Fprintf(w, "%-6s %-6s %6s %6s\n", "pair", "knob", "value", "F")
	for _, p := range points {
		fmt.Fprintf(w, "%-6s %-6s %6.1f %6.2f\n", p.Pair, p.Threshold, p.Value, p.F)
	}
}

// RenderFigure6 writes the LSI top-k results.
func RenderFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintln(w, "Figure 6: top-k LSI results")
	fmt.Fprintf(w, "%-6s %4s %6s %6s %6s\n", "pair", "k", "P", "R", "F")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %4d %6.2f %6.2f %6.2f\n", r.Pair, r.K, r.PRF.Precision, r.PRF.Recall, r.PRF.F)
	}
}

// RenderFigure7 writes the COMA++ configuration comparison.
func RenderFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "Figure 7: COMA++ configurations")
	fmt.Fprintf(w, "%-6s %-8s %6s %6s %6s\n", "pair", "config", "P", "R", "F")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-8s %6.2f %6.2f %6.2f\n", r.Pair, r.Config, r.PRF.Precision, r.PRF.Recall, r.PRF.F)
	}
}

// RenderAll runs every experiment at the given configuration and writes
// all tables and figures.
func RenderAll(w io.Writer, s *Setup, cfg core.Config) error {
	RenderTable1(w, s.Table1(cfg))
	fmt.Fprintln(w)
	RenderTable2(w, s.Table2(cfg))
	fmt.Fprintln(w)
	RenderTable3(w, s.Table3(cfg))
	fmt.Fprintln(w)
	RenderTable5(w, s.Table5())
	fmt.Fprintln(w)
	RenderTable6(w, s.Table6(cfg))
	fmt.Fprintln(w)
	RenderTable7(w, s.Table7(cfg, s.Cfg.Seed))
	fmt.Fprintln(w)
	RenderFigure3(w, s.Figure3(cfg))
	fmt.Fprintln(w)
	series, err := s.Figure4(cfg, 20)
	if err != nil {
		return err
	}
	RenderFigure4(w, series)
	fmt.Fprintln(w)
	RenderFigure5(w, s.Figure5(cfg))
	fmt.Fprintln(w)
	RenderFigure6(w, s.Figure6(cfg))
	fmt.Fprintln(w)
	RenderFigure7(w, s.Figure7())
	fmt.Fprintln(w)
	RenderOverlapCorrelations(w, s.OverlapCorrelations(cfg))
	fmt.Fprintln(w)
	RenderExtensions(w, s.Extensions(cfg))
	return nil
}
