package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/wiki"
)

func TestExtensionsShape(t *testing.T) {
	s := setup(t)
	rows := s.Extensions(core.DefaultConfig())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ExtensionRow{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("%-22s pt-en %.2f/%.2f/%.2f vn-en %.2f/%.2f/%.2f", r.Name,
			r.PtEn.Precision, r.PtEn.Recall, r.PtEn.F,
			r.VnEn.Precision, r.VnEn.Recall, r.VnEn.F)
	}
	wm := byName["WikiMatch"]
	hol := byName["Holistic correlation"]
	// Section 3.3: attribute correlation alone is not sufficient.
	if hol.PtEn.F >= wm.PtEn.F {
		t.Errorf("correlation-only matcher (%.3f) should trail WikiMatch (%.3f)",
			hol.PtEn.F, wm.PtEn.F)
	}
	fl := byName["Similarity flooding"]
	// Flooding uses the same evidence plus propagation; it should at
	// least be competitive (within a few points of WikiMatch).
	if fl.PtEn.F < wm.PtEn.F-0.1 {
		t.Errorf("similarity flooding (%.3f) unexpectedly weak vs WikiMatch (%.3f)",
			fl.PtEn.F, wm.PtEn.F)
	}
}

func TestOverlapCorrelationsPositivePtEn(t *testing.T) {
	s := setup(t)
	rows := s.OverlapCorrelations(core.DefaultConfig())
	for _, r := range rows {
		if r.Pair != wiki.PtEn {
			continue // four Vn-En points are too few for a coefficient
		}
		t.Logf("pt-en: WM=%.2f Bouma=%.2f COMA=%.2f LSI=%.2f", r.WikiMatch, r.Bouma, r.COMA, r.LSI)
		for name, v := range map[string]float64{
			"WikiMatch": r.WikiMatch, "Bouma": r.Bouma, "COMA": r.COMA, "LSI": r.LSI,
		} {
			if v <= 0 {
				t.Errorf("pt-en overlap↔F correlation for %s = %.2f, paper reports positive", name, v)
			}
		}
	}
}

func TestRenderExtensions(t *testing.T) {
	s := setup(t)
	var buf bytes.Buffer
	RenderExtensions(&buf, s.Extensions(core.DefaultConfig()))
	RenderOverlapCorrelations(&buf, s.OverlapCorrelations(core.DefaultConfig()))
	for _, want := range []string{"Similarity flooding", "Pearson"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render output missing %q", want)
		}
	}
}
