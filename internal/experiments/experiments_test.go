package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/wiki"
)

var shared *Setup

func setup(t *testing.T) *Setup {
	t.Helper()
	if shared == nil {
		s, err := NewSetup(synth.SmallConfig())
		if err != nil {
			t.Fatalf("NewSetup: %v", err)
		}
		shared = s
	}
	return shared
}

func TestSetupCases(t *testing.T) {
	s := setup(t)
	if got := len(s.Cases(wiki.PtEn)); got != 14 {
		t.Errorf("pt-en cases = %d, want 14", got)
	}
	if got := len(s.Cases(wiki.VnEn)); got != 4 {
		t.Errorf("vn-en cases = %d, want 4", got)
	}
	for _, tc := range s.Cases(wiki.PtEn) {
		if tc.Truth.Pairs() == 0 {
			t.Errorf("type %s has empty ground truth", tc.Canon)
		}
	}
}

// TestTable2Shape checks the paper's headline claims: WikiMatch has the
// best average F-measure for both pairs, with a clear recall advantage;
// LSI is the weakest overall.
func TestTable2Shape(t *testing.T) {
	s := setup(t)
	rows := s.Table2(core.DefaultConfig())
	for _, pair := range s.Pairs() {
		var avg *Table2Row
		for i := range rows {
			if rows[i].Pair == pair && rows[i].Canon == "Avg" {
				avg = &rows[i]
			}
		}
		if avg == nil {
			t.Fatalf("no Avg row for %s", pair)
		}
		t.Logf("%s Avg: WM=%.2f/%.2f/%.2f Bouma=%.2f/%.2f/%.2f COMA=%.2f/%.2f/%.2f LSI=%.2f/%.2f/%.2f",
			pair,
			avg.WikiMatch.Precision, avg.WikiMatch.Recall, avg.WikiMatch.F,
			avg.Bouma.Precision, avg.Bouma.Recall, avg.Bouma.F,
			avg.COMA.Precision, avg.COMA.Recall, avg.COMA.F,
			avg.LSI.Precision, avg.LSI.Recall, avg.LSI.F)
		for name, other := range map[string]float64{
			"Bouma": avg.Bouma.F, "COMA": avg.COMA.F, "LSI": avg.LSI.F,
		} {
			if avg.WikiMatch.F <= other {
				t.Errorf("%s: WikiMatch F (%.3f) should beat %s (%.3f)", pair, avg.WikiMatch.F, name, other)
			}
		}
		if avg.WikiMatch.Recall <= avg.Bouma.Recall {
			t.Errorf("%s: WikiMatch recall (%.3f) should beat Bouma (%.3f)",
				pair, avg.WikiMatch.Recall, avg.Bouma.Recall)
		}
		if avg.LSI.F >= avg.WikiMatch.F || avg.LSI.F >= avg.COMA.F {
			t.Errorf("%s: LSI should be weakest (LSI=%.3f COMA=%.3f WM=%.3f)",
				pair, avg.LSI.F, avg.COMA.F, avg.WikiMatch.F)
		}
	}
}

// TestTable3Shape checks the ablation claims of Section 4.2.
func TestTable3Shape(t *testing.T) {
	s := setup(t)
	rows := s.Table3(core.DefaultConfig())
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
		t.Logf("%-32s pt-en %.2f/%.2f/%.2f  vn-en %.2f/%.2f/%.2f", r.Name,
			r.PtEn.Precision, r.PtEn.Recall, r.PtEn.F,
			r.VnEn.Precision, r.VnEn.Recall, r.VnEn.F)
	}
	full := byName["WikiMatch"]
	// Removing ReviseUncertain costs recall with little precision change.
	noRev := byName["WikiMatch-ReviseUncertain"]
	if noRev.PtEn.Recall >= full.PtEn.Recall {
		t.Errorf("removing ReviseUncertain should cost pt-en recall: %.3f vs %.3f",
			noRev.PtEn.Recall, full.PtEn.Recall)
	}
	// Removing IntegrateMatches costs precision.
	noInt := byName["WikiMatch-IntegrateMatches"]
	if noInt.PtEn.Precision >= full.PtEn.Precision {
		t.Errorf("removing IntegrateMatches should cost pt-en precision: %.3f vs %.3f",
			noInt.PtEn.Precision, full.PtEn.Precision)
	}
	// Random ordering collapses F.
	if byName["WikiMatch random"].PtEn.F >= full.PtEn.F {
		t.Errorf("random ordering should hurt F: %.3f vs %.3f",
			byName["WikiMatch random"].PtEn.F, full.PtEn.F)
	}
	// Single step trades precision for recall.
	ss := byName["WikiMatch single step"]
	if ss.PtEn.Precision >= full.PtEn.Precision {
		t.Errorf("single step should collapse precision: %.3f vs %.3f",
			ss.PtEn.Precision, full.PtEn.Precision)
	}
	if ss.PtEn.Recall <= full.PtEn.Recall {
		t.Errorf("single step should raise recall: %.3f vs %.3f", ss.PtEn.Recall, full.PtEn.Recall)
	}
	// vsim is the most important similarity feature.
	dropV := full.PtEn.F - byName["WikiMatch-vsim"].PtEn.F
	dropL := full.PtEn.F - byName["WikiMatch-lsim"].PtEn.F
	if dropV <= dropL {
		t.Errorf("vsim removal (ΔF=%.3f) should hurt more than lsim removal (ΔF=%.3f)", dropV, dropL)
	}
}

// TestTable5Shape verifies the heterogeneity contrast.
func TestTable5Shape(t *testing.T) {
	s := setup(t)
	rows := s.Table5()
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	var film *Table5Row
	for i := range rows {
		if rows[i].Canon == "film" {
			film = &rows[i]
		}
	}
	if film == nil || !film.HasVn {
		t.Fatal("film row missing vn data")
	}
	if film.VnEn <= film.PtEn {
		t.Errorf("vn-en film overlap (%.2f) should exceed pt-en (%.2f)", film.VnEn, film.PtEn)
	}
}

// TestTable6Shape: WikiMatch wins the macro comparison too.
func TestTable6Shape(t *testing.T) {
	s := setup(t)
	for _, r := range s.Table6(core.DefaultConfig()) {
		t.Logf("%s macro: WM=%.2f Bouma=%.2f COMA=%.2f LSI=%.2f",
			r.Pair, r.WikiMatch.F, r.Bouma.F, r.COMA.F, r.LSI.F)
		if r.WikiMatch.F <= r.Bouma.F || r.WikiMatch.F <= r.COMA.F || r.WikiMatch.F <= r.LSI.F {
			t.Errorf("%s: WikiMatch macro F (%.3f) should lead (Bouma %.3f, COMA %.3f, LSI %.3f)",
				r.Pair, r.WikiMatch.F, r.Bouma.F, r.COMA.F, r.LSI.F)
		}
	}
}

// TestTable7Shape: LSI gives the best ordering; everything beats random.
func TestTable7Shape(t *testing.T) {
	s := setup(t)
	rows := s.Table7(core.DefaultConfig(), 99)
	byName := map[string]Table7Row{}
	for _, r := range rows {
		byName[r.Measure] = r
		t.Logf("%-8s pt-en %.2f vn-en %.2f", r.Measure, r.PtEn, r.VnEn)
	}
	for _, m := range []string{"X1", "X2", "X3"} {
		if byName[m].PtEn <= byName["Random"].PtEn {
			t.Errorf("%s MAP (%.3f) should beat random (%.3f)", m, byName[m].PtEn, byName["Random"].PtEn)
		}
	}
	if byName["LSI"].PtEn <= byName["Random"].PtEn || byName["LSI"].VnEn <= byName["Random"].VnEn {
		t.Errorf("LSI should beat random ordering")
	}
	if byName["LSI"].PtEn < byName["X1"].PtEn {
		t.Errorf("LSI MAP (%.3f) should beat X1 (%.3f) on pt-en", byName["LSI"].PtEn, byName["X1"].PtEn)
	}
}

// TestFigure3Shape: recall of WM exceeds WM* in every configuration.
func TestFigure3Shape(t *testing.T) {
	s := setup(t)
	for _, b := range s.Figure3(core.DefaultConfig()) {
		t.Logf("%s no-%s: WM*=%.2f/%.2f WM=%.2f/%.2f", b.Pair, b.Removed,
			b.WMx.Precision, b.WMx.Recall, b.WM.Precision, b.WM.Recall)
		if b.WM.Recall < b.WMx.Recall {
			t.Errorf("%s no-%s: WM recall (%.3f) below WM* (%.3f)",
				b.Pair, b.Removed, b.WM.Recall, b.WMx.Recall)
		}
	}
}

// TestFigure6Shape: recall grows and precision falls with k.
func TestFigure6Shape(t *testing.T) {
	s := setup(t)
	rows := s.Figure6(core.DefaultConfig())
	byPair := map[wiki.LanguagePair][]Figure6Row{}
	for _, r := range rows {
		byPair[r.Pair] = append(byPair[r.Pair], r)
	}
	for pair, rs := range byPair {
		if rs[0].K != 1 || rs[len(rs)-1].K != 10 {
			t.Fatalf("%s: unexpected k order %v", pair, rs)
		}
		if rs[len(rs)-1].PRF.Recall < rs[0].PRF.Recall {
			t.Errorf("%s: recall should grow with k", pair)
		}
		if rs[len(rs)-1].PRF.Precision > rs[0].PRF.Precision {
			t.Errorf("%s: precision should fall with k", pair)
		}
	}
}

// TestFigure5Stability: F stays in a reasonable band over a broad range
// of thresholds and degrades at extreme TLSI.
func TestFigure5Stability(t *testing.T) {
	s := setup(t)
	points := s.Figure5(core.DefaultConfig())
	var fAtLowTLSI, fAtHighTLSI float64
	for _, p := range points {
		if p.Pair == wiki.PtEn && p.Threshold == "TLSI" {
			if p.Value < 0.15 && p.Value > 0.05 {
				fAtLowTLSI = p.F
			}
			if p.Value > 0.85 {
				fAtHighTLSI = p.F
			}
		}
	}
	if fAtHighTLSI >= fAtLowTLSI {
		t.Errorf("high TLSI (%.3f) should reduce F vs low TLSI (%.3f)", fAtHighTLSI, fAtLowTLSI)
	}
}

func TestRenderAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full render is slow")
	}
	s := setup(t)
	var buf bytes.Buffer
	if err := RenderAll(&buf, s, core.DefaultConfig()); err != nil {
		t.Fatalf("RenderAll: %v", err)
	}
	for _, want := range []string{"Table 2", "Table 7", "Figure 4", "Figure 7"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("output missing %q", want)
		}
	}
}
