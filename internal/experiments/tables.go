package experiments

import (
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/wiki"
)

// ---------------------------------------------------------------- Table 1

// AlignmentExample is one derived alignment ("direção ~ directed by").
type AlignmentExample struct {
	Pair  wiki.LanguagePair
	Canon string
	A, B  string
	OK    bool // whether the ground truth confirms it
}

// Table1 returns sample alignments found by WikiMatch for the paper's
// example types (film and actor in both pairs), including the
// one-to-many groupings.
func (s *Setup) Table1(cfg core.Config) []AlignmentExample {
	var out []AlignmentExample
	for _, pair := range s.Pairs() {
		for _, tc := range s.Cases(pair) {
			if tc.Canon != "film" && tc.Canon != "actor" {
				continue
			}
			derived := s.RunWikiMatch(tc, cfg)
			var pairsSorted [][2]string
			for a, bs := range derived {
				for b := range bs {
					pairsSorted = append(pairsSorted, [2]string{a, b})
				}
			}
			sort.Slice(pairsSorted, func(i, j int) bool {
				if pairsSorted[i][0] != pairsSorted[j][0] {
					return pairsSorted[i][0] < pairsSorted[j][0]
				}
				return pairsSorted[i][1] < pairsSorted[j][1]
			})
			for _, p := range pairsSorted {
				out = append(out, AlignmentExample{
					Pair: pair, Canon: tc.Canon, A: p[0], B: p[1],
					OK: tc.Truth.Has(p[0], p[1]),
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one row of Table 2: weighted P/R/F per type for the four
// approaches.
type Table2Row struct {
	Pair                        wiki.LanguagePair
	Canon                       string
	WikiMatch, Bouma, COMA, LSI eval.PRF
}

// Table2 reproduces the headline comparison: WikiMatch vs Bouma vs the
// best COMA++ configuration vs LSI top-1, per entity type and language
// pair, plus the per-pair averages (rows with Canon "Avg").
func (s *Setup) Table2(cfg core.Config) []Table2Row {
	lt := s.LabelTranslator(1.0)
	var out []Table2Row
	for _, pair := range s.Pairs() {
		// The paper's best COMA++ configurations: NG+ID for Pt-En, I+D
		// for Vn-En (Appendix C).
		comaCfg := baselines.COMAConfig{Name: true, Instance: true,
			TranslateNames: true, TranslateInstances: true, Threshold: 0.01}
		if pair == wiki.VnEn {
			comaCfg = baselines.COMAConfig{Instance: true, TranslateInstances: true, Threshold: 0.01}
		}
		var rows []Table2Row
		for _, tc := range s.Cases(pair) {
			row := Table2Row{Pair: pair, Canon: tc.Canon}
			row.WikiMatch = s.EvaluateWeighted(tc, s.RunWikiMatch(tc, cfg))
			row.Bouma = s.EvaluateWeighted(tc,
				baselines.Bouma(s.Corpus, pair, tc.TypeA, tc.TypeB, baselines.DefaultBoumaConfig()))
			row.COMA = s.EvaluateWeighted(tc, baselines.COMA(tc.TD, lt, comaCfg))
			row.LSI = s.EvaluateWeighted(tc, baselines.LSITopK(tc.TD, cfg.LSIRank, 1))
			rows = append(rows, row)
		}
		avg := Table2Row{Pair: pair, Canon: "Avg"}
		var wm, bm, cm, ls []eval.PRF
		for _, r := range rows {
			wm = append(wm, r.WikiMatch)
			bm = append(bm, r.Bouma)
			cm = append(cm, r.COMA)
			ls = append(ls, r.LSI)
		}
		avg.WikiMatch, avg.Bouma, avg.COMA, avg.LSI =
			eval.Average(wm), eval.Average(bm), eval.Average(cm), eval.Average(ls)
		out = append(out, rows...)
		out = append(out, avg)
	}
	return out
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one configuration of the component-contribution study.
type Table3Row struct {
	Name string
	// PtEn and VnEn are the weighted scores averaged over all types.
	PtEn, VnEn eval.PRF
}

// Table3 reproduces the ablation study of Section 4.2: each row removes
// one component of WikiMatch. Rows suffixed "*" start from WikiMatch
// without ReviseUncertain, matching the appendix rows of Table 3.
func (s *Setup) Table3(base core.Config) []Table3Row {
	type variant struct {
		name string
		mod  func(core.Config) core.Config
	}
	variants := []variant{
		{"WikiMatch", func(c core.Config) core.Config { return c }},
		{"WikiMatch-ReviseUncertain", func(c core.Config) core.Config { c.DisableRevise = true; return c }},
		{"WikiMatch-IntegrateMatches", func(c core.Config) core.Config { c.DisableIntegrate = true; return c }},
		{"WikiMatch random", func(c core.Config) core.Config { c.RandomOrder = true; return c }},
		{"WikiMatch single step", func(c core.Config) core.Config { c.SingleStep = true; return c }},
		{"WikiMatch-vsim", func(c core.Config) core.Config { c.DisableVSim = true; return c }},
		{"WikiMatch-lsim", func(c core.Config) core.Config { c.DisableLSim = true; return c }},
		{"WikiMatch-LSI", func(c core.Config) core.Config { c.DisableLSI = true; return c }},
		{"WikiMatch-inductive grouping", func(c core.Config) core.Config { c.DisableInductive = true; return c }},
		{"WikiMatch*-vsim", func(c core.Config) core.Config { c.DisableRevise, c.DisableVSim = true, true; return c }},
		{"WikiMatch*-lsim", func(c core.Config) core.Config { c.DisableRevise, c.DisableLSim = true, true; return c }},
		{"WikiMatch*-LSI", func(c core.Config) core.Config { c.DisableRevise, c.DisableLSI = true, true; return c }},
		{"WikiMatch* random", func(c core.Config) core.Config { c.DisableRevise, c.RandomOrder = true, true; return c }},
	}
	var out []Table3Row
	for _, v := range variants {
		cfg := v.mod(base)
		row := Table3Row{Name: v.name}
		row.PtEn = s.averageOverTypes(wiki.PtEn, cfg)
		row.VnEn = s.averageOverTypes(wiki.VnEn, cfg)
		out = append(out, row)
	}
	return out
}

// averageOverTypes runs a configuration over every type of a pair and
// averages the weighted scores.
func (s *Setup) averageOverTypes(pair wiki.LanguagePair, cfg core.Config) eval.PRF {
	var rows []eval.PRF
	for _, tc := range s.Cases(pair) {
		rows = append(rows, s.EvaluateWeighted(tc, s.RunWikiMatch(tc, cfg)))
	}
	return eval.Average(rows)
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one type's attribute overlap per language pair.
type Table5Row struct {
	Canon string
	PtEn  float64
	VnEn  float64 // 0 when the type has no Vietnamese edition
	HasVn bool
}

// Table5 reproduces the structural-heterogeneity analysis of Appendix A.
func (s *Setup) Table5() []Table5Row {
	byCanon := map[string]*Table5Row{}
	var order []string
	for _, pair := range s.Pairs() {
		for _, tc := range s.Cases(pair) {
			row := byCanon[tc.Canon]
			if row == nil {
				row = &Table5Row{Canon: tc.Canon}
				byCanon[tc.Canon] = row
				order = append(order, tc.Canon)
			}
			ov := eval.Overlap(s.Corpus, pair, tc.TypeA, tc.TypeB, tc.TypeTruth.Correct)
			if pair == wiki.PtEn {
				row.PtEn = ov
			} else {
				row.VnEn = ov
				row.HasVn = true
			}
		}
	}
	sort.Strings(order)
	out := make([]Table5Row, 0, len(order))
	for _, canon := range order {
		out = append(out, *byCanon[canon])
	}
	return out
}

// ---------------------------------------------------------------- Table 6

// Table6Row is the macro-averaged comparison for one language pair.
type Table6Row struct {
	Pair                        wiki.LanguagePair
	WikiMatch, Bouma, COMA, LSI eval.PRF
}

// Table6 reproduces the macro-averaging results of Appendix B.
func (s *Setup) Table6(cfg core.Config) []Table6Row {
	lt := s.LabelTranslator(1.0)
	var out []Table6Row
	for _, pair := range s.Pairs() {
		comaCfg := baselines.COMAConfig{Name: true, Instance: true,
			TranslateNames: true, TranslateInstances: true, Threshold: 0.01}
		if pair == wiki.VnEn {
			comaCfg = baselines.COMAConfig{Instance: true, TranslateInstances: true, Threshold: 0.01}
		}
		var wm, bm, cm, ls []eval.PRF
		for _, tc := range s.Cases(pair) {
			wm = append(wm, eval.Macro(s.RunWikiMatch(tc, cfg), tc.Truth))
			bm = append(bm, eval.Macro(
				baselines.Bouma(s.Corpus, pair, tc.TypeA, tc.TypeB, baselines.DefaultBoumaConfig()), tc.Truth))
			cm = append(cm, eval.Macro(baselines.COMA(tc.TD, lt, comaCfg), tc.Truth))
			ls = append(ls, eval.Macro(baselines.LSITopK(tc.TD, cfg.LSIRank, 1), tc.Truth))
		}
		out = append(out, Table6Row{Pair: pair,
			WikiMatch: eval.Average(wm), Bouma: eval.Average(bm),
			COMA: eval.Average(cm), LSI: eval.Average(ls)})
	}
	return out
}

// ---------------------------------------------------------------- Table 7

// Table7Row is the MAP of one candidate-pair ordering per language pair.
type Table7Row struct {
	Measure    string
	PtEn, VnEn float64
}

// Table7 reproduces the ordering-quality study of Appendix B: mean
// average precision of LSI against the co-occurrence measures X1, X2, X3
// and a random ordering.
func (s *Setup) Table7(cfg core.Config, seed int64) []Table7Row {
	measures := []string{"LSI", "X1", "X2", "X3", "Random"}
	out := make([]Table7Row, len(measures))
	for i, m := range measures {
		out[i].Measure = m
	}
	for _, pair := range s.Pairs() {
		sums := make([]float64, len(measures))
		n := 0
		for _, tc := range s.Cases(pair) {
			rankings := s.rankings(tc, cfg, seed)
			for i, m := range measures {
				sums[i] += eval.MAP(rankings[m], tc.Truth)
			}
			n++
		}
		for i := range measures {
			avg := sums[i] / float64(n)
			if pair == wiki.PtEn {
				out[i].PtEn = avg
			} else {
				out[i].VnEn = avg
			}
		}
	}
	return out
}

// rankings scores every cross-language pair of a case under each
// ordering measure.
func (s *Setup) rankings(tc *TypeCase, cfg core.Config, seed int64) map[string][]eval.RankedPair {
	rng := rand.New(rand.NewSource(seed))
	lsiRank := baselines.LSIRanking(tc.TD, cfg.LSIRank)
	out := map[string][]eval.RankedPair{"LSI": lsiRank}
	for _, m := range []string{"X1", "X2", "X3", "Random"} {
		var rp []eval.RankedPair
		for _, p := range tc.TD.CrossPairs() {
			a, b := tc.TD.Attrs[p[0]], tc.TD.Attrs[p[1]]
			var score float64
			switch m {
			case "X1":
				score = tc.TD.X1(p[0], p[1])
			case "X2":
				score = tc.TD.X2(p[0], p[1])
			case "X3":
				score = tc.TD.X3(p[0], p[1])
			case "Random":
				score = rng.Float64()
			}
			rp = append(rp, eval.RankedPair{A: a.Name, B: b.Name, Score: score})
		}
		out[m] = rp
	}
	return out
}
