// Package client is the Go SDK for the WikiMatch wire protocol v1: a
// typed HTTP client for a running wikimatchd (unary calls, a streaming
// NDJSON iterator, and automatic retries on retryable error codes), and
// an in-process Local backend that serves the same interface straight
// from a service.Session. Callers written against Backend run
// identically in process and over the network — cmd/wikimatch's -remote
// flag is exactly that switch.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/protocol"
)

// Backend is the protocol surface shared by the remote Client and the
// in-process Local backend.
type Backend interface {
	// Match runs a pair or single-type request.
	Match(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error)
	// MatchAll runs an all-pairs batch request.
	MatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error)
	// Stream runs a pair or all-pairs request with streamed progress.
	Stream(ctx context.Context, req protocol.MatchRequest) (*Stream, error)
	// Stats snapshots the server's corpus, cache and configuration.
	Stats(ctx context.Context) (*protocol.StatsResponse, error)
	// Invalidate drops cached artifacts for a language ("" = all).
	Invalidate(ctx context.Context, lang string) (*protocol.InvalidateResponse, error)
}

// Client speaks wire protocol v1 to a wikimatchd base URL.
type Client struct {
	base       string
	httpClient *http.Client
	maxRetries int
	backoff    time.Duration
	userAgent  string
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpClient = h } }

// WithRetries sets how many times a retryable failure is retried
// (default 2) and the base backoff delay between attempts (default
// 250ms; doubled per attempt, capped by the server's Retry-After).
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoff = n, backoff }
}

// WithUserAgent sets the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// New creates a client for a wikimatchd base URL ("http://host:8080").
func New(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", base)
	}
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		httpClient: http.DefaultClient,
		maxRetries: 2,
		backoff:    250 * time.Millisecond,
		userAgent:  "wikimatch-client/" + protocol.Version,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Match implements Backend over POST /v1/match.
func (c *Client) Match(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error) {
	var out protocol.MatchResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/match", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MatchAll implements Backend over POST /v1/matchall.
func (c *Client) MatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error) {
	var out protocol.MatchAllResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/matchall", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats implements Backend over GET /v1/corpus.
func (c *Client) Stats(ctx context.Context) (*protocol.StatsResponse, error) {
	var out protocol.StatsResponse
	if err := c.unary(ctx, http.MethodGet, "/v1/corpus", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Invalidate implements Backend over POST /v1/invalidate.
func (c *Client) Invalidate(ctx context.Context, lang string) (*protocol.InvalidateResponse, error) {
	var out protocol.InvalidateResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/invalidate", protocol.InvalidateRequest{Lang: lang}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes GET /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (*protocol.Health, error) {
	var out protocol.Health
	if err := c.unary(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics reads GET /v1/metrics.
func (c *Client) Metrics(ctx context.Context) (*protocol.Metrics, error) {
	var out protocol.Metrics
	if err := c.unary(ctx, http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stream implements Backend over POST /v1/stream. The returned Stream
// must be closed. Streams are not retried: a failure mid-stream would
// replay lines the consumer already acted on.
func (c *Client) Stream(ctx context.Context, req protocol.MatchRequest) (*Stream, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/stream", req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	return &Stream{
		next: func() (protocol.StreamLine, bool, error) {
			for sc.Scan() {
				raw := bytes.TrimSpace(sc.Bytes())
				if len(raw) == 0 {
					continue
				}
				var line protocol.StreamLine
				if err := json.Unmarshal(raw, &line); err != nil {
					return protocol.StreamLine{}, false, fmt.Errorf("client: decode stream line: %w", err)
				}
				return line, true, nil
			}
			return protocol.StreamLine{}, false, sc.Err()
		},
		close: resp.Body.Close,
	}, nil
}

// unary runs one request/response exchange with retries on retryable
// protocol errors (and on transport errors, which cannot have left
// matching side effects worth worrying about — the API is read-mostly
// and Invalidate is idempotent).
func (c *Client) unary(ctx context.Context, method, path string, in, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.do(ctx, method, path, in)
		if err == nil {
			err = decodeResponse(resp, out)
			if err == nil {
				return nil
			}
		}
		lastErr = err
		if attempt >= c.maxRetries || !retryableErr(err) {
			return lastErr
		}
		delay := c.backoff << attempt
		if ra := retryAfter(err); ra > delay {
			delay = ra
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// do issues one HTTP exchange. A nil body sends no payload.
func (c *Client) do(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.userAgent)
	return c.httpClient.Do(req)
}

// decodeResponse decodes a 200 into out, or any other status into a
// *protocol.Error. out is zeroed first: unary retries decode into the
// same value, and a partially-decoded body from a failed earlier
// attempt must not bleed into the attempt that succeeds (maps merge,
// absent fields keep stale values).
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if v := reflect.ValueOf(out); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// retryAfterKey carries the server's Retry-After hint inside the error
// details.
const retryAfterKey = "retryAfter"

// decodeError turns a non-200 response into a *protocol.Error,
// synthesizing one from the status when the body carries no envelope (a
// proxy's error page, say). The Retry-After header, when present, rides
// along in the details.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env protocol.ErrorEnvelope
	e := &protocol.Error{}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		e = env.Error
	} else {
		e = protocol.Errorf(protocol.CodeForStatus(resp.StatusCode), "HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		e = e.WithDetail(retryAfterKey, ra)
	}
	return e
}

// retryableErr reports whether an error is worth retrying: a retryable
// protocol error, or a transport-level failure.
func retryableErr(err error) bool {
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe.Retryable
	}
	// No protocol envelope: connection refused/reset et al.
	return err != nil
}

// retryAfter extracts the server's Retry-After hint, if any.
func retryAfter(err error) time.Duration {
	var pe *protocol.Error
	if !errors.As(err, &pe) || pe.Details == nil {
		return 0
	}
	secs, convErr := strconv.Atoi(pe.Details[retryAfterKey])
	if convErr != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Stream iterates a progress stream line by line, whether the lines
// arrive as NDJSON over HTTP or straight from an in-process session:
//
//	stream, err := backend.Stream(ctx, req)
//	defer stream.Close()
//	for stream.Next() {
//	    line := stream.Line()
//	    ...
//	}
//	err = stream.Err()
type Stream struct {
	next  func() (protocol.StreamLine, bool, error)
	close func() error
	line  protocol.StreamLine
	err   error
	done  bool
}

// Next advances to the next line, reporting false at end of stream or
// on error (distinguish with Err).
func (s *Stream) Next() bool {
	if s.done {
		return false
	}
	line, ok, err := s.next()
	if !ok {
		s.err = err
		s.done = true
		return false
	}
	s.line = line
	return true
}

// Line returns the current line (valid after a true Next).
func (s *Stream) Line() protocol.StreamLine { return s.line }

// Err returns the terminal error, nil on a clean end of stream.
func (s *Stream) Err() error { return s.err }

// Close releases the stream's resources. It is safe to call at any
// point; iterating after Close reports end of stream.
func (s *Stream) Close() error {
	s.done = true
	if s.close != nil {
		return s.close()
	}
	return nil
}
