// Package client is the Go SDK for the WikiMatch wire protocol v1: a
// typed HTTP client for a running wikimatchd (unary calls, a streaming
// NDJSON iterator, and automatic retries on retryable error codes), and
// an in-process Local backend that serves the same interface straight
// from a service.Session. Callers written against Backend run
// identically in process and over the network — cmd/wikimatch's -remote
// flag is exactly that switch.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/protocol"
)

// Backend is the protocol surface shared by the remote Client and the
// in-process Local backend.
type Backend interface {
	// Match runs a pair or single-type request.
	Match(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error)
	// MatchAll runs an all-pairs batch request.
	MatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error)
	// Stream runs a pair or all-pairs request with streamed progress.
	Stream(ctx context.Context, req protocol.MatchRequest) (*Stream, error)
	// Audit runs a cross-edition value-consistency audit.
	Audit(ctx context.Context, req protocol.AuditRequest) (*protocol.AuditResponse, error)
	// AuditStream runs an audit with streamed progress and findings.
	AuditStream(ctx context.Context, req protocol.AuditRequest) (*Stream, error)
	// Stats snapshots the server's corpus, cache and configuration.
	Stats(ctx context.Context) (*protocol.StatsResponse, error)
	// Invalidate drops cached artifacts for a language ("" = all).
	Invalidate(ctx context.Context, lang string) (*protocol.InvalidateResponse, error)
	// Delta applies article upserts/removes to the live corpus.
	Delta(ctx context.Context, req protocol.DeltaRequest) (*protocol.DeltaResponse, error)
}

// Client speaks wire protocol v1 to a wikimatchd base URL.
type Client struct {
	base       string
	httpClient *http.Client
	maxRetries int
	backoff    time.Duration
	hedgeDelay time.Duration
	userAgent  string
	// jitter returns a random duration in [0, span], the spread added to
	// retry backoff so a fleet of clients released by the same outage
	// does not retry in lockstep. Replaceable in tests for determinism.
	jitter func(span time.Duration) time.Duration
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpClient = h } }

// WithRetries sets how many times a retryable failure is retried
// (default 2) and the base backoff delay between attempts (default
// 250ms; doubled per attempt and jittered — see unary — with the
// server's Retry-After as a floor).
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.backoff = n, backoff }
}

// WithHedge enables hedged requests for read-only unary calls (Match,
// MatchAll, Stats, Healthz, Metrics): when no response has arrived
// after delay — or the first attempt failed with a retryable error
// while the backup was still unfired — an identical second request is
// issued and the first success wins; the loser is cancelled. Mutating
// calls (Invalidate, Delta) and streams never hedge. 0 (the default)
// disables hedging. A hedged exchange counts as one attempt against
// the retry budget.
func WithHedge(delay time.Duration) Option {
	return func(c *Client) { c.hedgeDelay = delay }
}

// WithUserAgent sets the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// New creates a client for a wikimatchd base URL ("http://host:8080").
func New(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid base URL %q", base)
	}
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		httpClient: http.DefaultClient,
		maxRetries: 2,
		backoff:    250 * time.Millisecond,
		userAgent:  "wikimatch-client/" + protocol.Version,
		jitter: func(span time.Duration) time.Duration {
			if span <= 0 {
				return 0
			}
			return time.Duration(rand.Int64N(int64(span) + 1))
		},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Match implements Backend over POST /v1/match.
func (c *Client) Match(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error) {
	var out protocol.MatchResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/match", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// MatchAll implements Backend over POST /v1/matchall.
func (c *Client) MatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error) {
	var out protocol.MatchAllResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/matchall", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Audit implements Backend over POST /v1/audit.
func (c *Client) Audit(ctx context.Context, req protocol.AuditRequest) (*protocol.AuditResponse, error) {
	var out protocol.AuditResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/audit", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// AuditStream implements Backend over POST /v1/audit/stream. Like
// Stream, the result must be closed and failures are not retried.
func (c *Client) AuditStream(ctx context.Context, req protocol.AuditRequest) (*Stream, error) {
	return c.openStream(ctx, "/v1/audit/stream", req)
}

// Stats implements Backend over GET /v1/corpus.
func (c *Client) Stats(ctx context.Context) (*protocol.StatsResponse, error) {
	var out protocol.StatsResponse
	if err := c.unary(ctx, http.MethodGet, "/v1/corpus", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Invalidate implements Backend over POST /v1/invalidate.
func (c *Client) Invalidate(ctx context.Context, lang string) (*protocol.InvalidateResponse, error) {
	var out protocol.InvalidateResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/invalidate", protocol.InvalidateRequest{Lang: lang}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes GET /v1/healthz.
func (c *Client) Healthz(ctx context.Context) (*protocol.Health, error) {
	var out protocol.Health
	if err := c.unary(ctx, http.MethodGet, "/v1/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics reads GET /v1/metrics.
func (c *Client) Metrics(ctx context.Context) (*protocol.Metrics, error) {
	var out protocol.Metrics
	if err := c.unary(ctx, http.MethodGet, "/v1/metrics", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delta implements Backend over POST /v1/corpus/delta. Deltas are
// mutations, so they are never hedged; they are retried like any unary
// call — applying the same delta twice converges to the same corpus
// (upserts and removes are absolute), so a retry after an ambiguous
// transport failure is safe.
func (c *Client) Delta(ctx context.Context, req protocol.DeltaRequest) (*protocol.DeltaResponse, error) {
	var out protocol.DeltaResponse
	if err := c.unary(ctx, http.MethodPost, "/v1/corpus/delta", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stream implements Backend over POST /v1/stream. The returned Stream
// must be closed. Streams are not retried: a failure mid-stream would
// replay lines the consumer already acted on.
func (c *Client) Stream(ctx context.Context, req protocol.MatchRequest) (*Stream, error) {
	return c.openStream(ctx, "/v1/stream", req)
}

// openStream opens one NDJSON endpoint and wraps it in a Stream.
func (c *Client) openStream(ctx context.Context, path string, req any) (*Stream, error) {
	resp, err := c.do(ctx, http.MethodPost, path, req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	return &Stream{
		next: func() (protocol.StreamLine, bool, error) {
			for sc.Scan() {
				raw := bytes.TrimSpace(sc.Bytes())
				if len(raw) == 0 {
					continue
				}
				var line protocol.StreamLine
				if err := json.Unmarshal(raw, &line); err != nil {
					return protocol.StreamLine{}, false, fmt.Errorf("client: decode stream line: %w", err)
				}
				return line, true, nil
			}
			return protocol.StreamLine{}, false, sc.Err()
		},
		close: resp.Body.Close,
	}, nil
}

// unary runs one request/response exchange with retries on retryable
// protocol errors (and on transport errors, which cannot have left
// matching side effects worth worrying about — the API is read-mostly
// and Invalidate is idempotent). hedgeable marks read-only calls the
// client may race a duplicate request for (see WithHedge).
//
// The backoff between attempts is jittered to avoid synchronized retry
// storms: when a loaded shard sheds a whole fleet of requests at once,
// unjittered clients would all come back in the same instant and shed
// again. Each delay is drawn from [base/2, base] where base doubles per
// attempt; a server-supplied Retry-After is a floor — the client waits
// at least that long, plus up to half of it in jitter.
func (c *Client) unary(ctx context.Context, method, path string, in, out any, hedgeable bool) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.exchange(ctx, method, path, in, out, hedgeable)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= c.maxRetries || !retryableErr(err) {
			return lastErr
		}
		base := c.backoff << attempt
		delay := base/2 + c.jitter(base/2)
		if ra := retryAfter(err); ra > 0 {
			if spread := ra + c.jitter(ra/2); spread > delay {
				delay = spread
			}
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// exchange runs one logical exchange: a single request, or — for
// hedgeable calls on a hedging client — a raced pair.
func (c *Client) exchange(ctx context.Context, method, path string, in, out any, hedgeable bool) error {
	if !hedgeable || c.hedgeDelay <= 0 {
		resp, err := c.do(ctx, method, path, in)
		if err != nil {
			return err
		}
		return decodeResponse(resp, out)
	}
	return c.hedged(ctx, method, path, in, out)
}

// hedged races a primary request against a backup fired once the hedge
// delay elapses — or immediately, if the primary fails with a retryable
// error first. The first success wins and cancels the loser; each
// in-flight request decodes into its own value so a losing response can
// never corrupt the winner's. When both fail, the primary's error is
// returned.
func (c *Client) hedged(ctx context.Context, method, path string, in, out any) error {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		val     any
		err     error
		primary bool
	}
	results := make(chan outcome, 2)
	launch := func(primary bool) {
		val := cloneTarget(out)
		resp, err := c.do(hctx, method, path, in)
		if err == nil {
			err = decodeResponse(resp, val)
		}
		results <- outcome{val: val, err: err, primary: primary}
	}

	go launch(true)
	launched := 1
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()

	var primaryErr, anyErr error
	for done := 0; done < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				go launch(false)
			}
		case o := <-results:
			done++
			if o.err == nil {
				if out != nil {
					reflect.ValueOf(out).Elem().Set(reflect.ValueOf(o.val).Elem())
				}
				return nil
			}
			if o.primary {
				primaryErr = o.err
			}
			anyErr = o.err
			if launched == 1 && retryableErr(o.err) {
				// The primary failed retryably before the timer fired:
				// hedge now instead of waiting out the delay.
				launched = 2
				go launch(false)
			}
		}
	}
	if primaryErr != nil {
		return primaryErr
	}
	return anyErr
}

// cloneTarget allocates a fresh decode target of out's type, so
// concurrent hedged attempts never write the same value.
func cloneTarget(out any) any {
	if out == nil {
		return nil
	}
	return reflect.New(reflect.TypeOf(out).Elem()).Interface()
}

// do issues one HTTP exchange. A nil body sends no payload.
func (c *Client) do(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.userAgent)
	// Propagate a context-carried request ID (stamped by the service
	// middleware) so a router→shard hop appears under the user's ID in
	// the shard's access log. Invalid IDs are dropped, not sanitized:
	// the receiving middleware would re-mint anyway.
	if id := protocol.RequestIDFromContext(ctx); protocol.ValidRequestID(id) {
		req.Header.Set("X-Request-Id", id)
	}
	return c.httpClient.Do(req)
}

// decodeResponse decodes a 200 into out, or any other status into a
// *protocol.Error. out is zeroed first: unary retries decode into the
// same value, and a partially-decoded body from a failed earlier
// attempt must not bleed into the attempt that succeeds (maps merge,
// absent fields keep stale values).
func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if v := reflect.ValueOf(out); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// retryAfterKey carries the server's Retry-After hint inside the error
// details.
const retryAfterKey = "retryAfter"

// decodeError turns a non-200 response into a *protocol.Error,
// synthesizing one from the status when the body carries no envelope (a
// proxy's error page, say). The Retry-After header, when present, rides
// along in the details.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env protocol.ErrorEnvelope
	e := &protocol.Error{}
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		e = env.Error
	} else {
		e = protocol.Errorf(protocol.CodeForStatus(resp.StatusCode), "HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		e = e.WithDetail(retryAfterKey, ra)
	}
	return e
}

// retryableErr reports whether an error is worth retrying: a retryable
// protocol error, or a transport-level failure.
func retryableErr(err error) bool {
	var pe *protocol.Error
	if errors.As(err, &pe) {
		return pe.Retryable
	}
	// No protocol envelope: connection refused/reset et al.
	return err != nil
}

// retryAfter extracts the server's Retry-After hint, if any.
func retryAfter(err error) time.Duration {
	var pe *protocol.Error
	if !errors.As(err, &pe) || pe.Details == nil {
		return 0
	}
	secs, convErr := strconv.Atoi(pe.Details[retryAfterKey])
	if convErr != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Stream iterates a progress stream line by line, whether the lines
// arrive as NDJSON over HTTP or straight from an in-process session:
//
//	stream, err := backend.Stream(ctx, req)
//	defer stream.Close()
//	for stream.Next() {
//	    line := stream.Line()
//	    ...
//	}
//	err = stream.Err()
type Stream struct {
	next  func() (protocol.StreamLine, bool, error)
	close func() error
	line  protocol.StreamLine
	err   error
	done  bool
}

// Next advances to the next line, reporting false at end of stream or
// on error (distinguish with Err).
func (s *Stream) Next() bool {
	if s.done {
		return false
	}
	line, ok, err := s.next()
	if !ok {
		s.err = err
		s.done = true
		return false
	}
	s.line = line
	return true
}

// Line returns the current line (valid after a true Next).
func (s *Stream) Line() protocol.StreamLine { return s.line }

// Err returns the terminal error, nil on a clean end of stream.
func (s *Stream) Err() error { return s.err }

// Close releases the stream's resources. It is safe to call at any
// point; iterating after Close reports end of stream.
func (s *Stream) Close() error {
	s.done = true
	if s.close != nil {
		return s.close()
	}
	return nil
}
