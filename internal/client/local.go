package client

import (
	"context"

	"repro/internal/protocol"
	"repro/internal/service"
)

// Local serves the Backend interface straight from an in-process
// session — the same typed execution path a wikimatchd reached through
// Client runs, with no HTTP in between. Code written against Backend
// (cmd/wikimatch, tests asserting remote/local equivalence) switches
// between the two with one assignment.
type Local struct {
	S *service.Session
}

// NewLocal wraps a session as a Backend.
func NewLocal(s *service.Session) Local { return Local{S: s} }

// Match implements Backend.
func (l Local) Match(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchResponse, error) {
	return l.S.ServeMatch(ctx, req)
}

// MatchAll implements Backend.
func (l Local) MatchAll(ctx context.Context, req protocol.MatchRequest) (*protocol.MatchAllResponse, error) {
	return l.S.ServeMatchAll(ctx, req)
}

// Stream implements Backend.
func (l Local) Stream(ctx context.Context, req protocol.MatchRequest) (*Stream, error) {
	lines, err := l.S.ServeStream(ctx, req)
	if err != nil {
		return nil, err
	}
	return &Stream{
		next: func() (protocol.StreamLine, bool, error) {
			line, ok := <-lines
			return line, ok, nil
		},
	}, nil
}

// Audit implements Backend.
func (l Local) Audit(ctx context.Context, req protocol.AuditRequest) (*protocol.AuditResponse, error) {
	return l.S.ServeAudit(ctx, req)
}

// AuditStream implements Backend.
func (l Local) AuditStream(ctx context.Context, req protocol.AuditRequest) (*Stream, error) {
	lines, err := l.S.ServeAuditStream(ctx, req)
	if err != nil {
		return nil, err
	}
	return &Stream{
		next: func() (protocol.StreamLine, bool, error) {
			line, ok := <-lines
			return line, ok, nil
		},
	}, nil
}

// Stats implements Backend.
func (l Local) Stats(ctx context.Context) (*protocol.StatsResponse, error) {
	stats := l.S.Stats()
	return &stats, nil
}

// Delta implements Backend.
func (l Local) Delta(ctx context.Context, req protocol.DeltaRequest) (*protocol.DeltaResponse, error) {
	return l.S.ServeDelta(ctx, req)
}

// Invalidate implements Backend.
func (l Local) Invalidate(ctx context.Context, lang string) (*protocol.InvalidateResponse, error) {
	resolved, err := protocol.InvalidateRequest{Lang: lang}.Validate()
	if err != nil {
		return nil, err
	}
	return &protocol.InvalidateResponse{Dropped: l.S.Invalidate(resolved)}, nil
}
