package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/wiki"
)

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "localhost:8080", "/relative"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := New("http://localhost:8080/"); err != nil {
		t.Errorf("New rejected a valid URL: %v", err)
	}
}

// TestUnaryRetriesRetryable serves two 429 envelopes before a success
// and expects the client to push through them, honouring Retry-After
// only as a floor it can afford.
func TestUnaryRetriesRetryable(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeOverloaded, "full")})
			return
		}
		_ = json.NewEncoder(w).Encode(protocol.MatchResponse{Pair: "pt-en"})
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithRetries(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Match(context.Background(), protocol.MatchRequest{Pair: "pt-en"})
	if err != nil {
		t.Fatalf("Match after retries: %v", err)
	}
	if resp.Pair != "pt-en" || calls.Load() != 3 {
		t.Errorf("resp=%+v calls=%d", resp, calls.Load())
	}
}

// TestUnaryDoesNotRetryNonRetryable: a 400 envelope must surface
// immediately as a typed error.
func TestUnaryDoesNotRetryNonRetryable(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeInvalidArgument, "nope")})
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(3, time.Millisecond))
	_, err := c.Match(context.Background(), protocol.MatchRequest{})
	pe, ok := err.(*protocol.Error)
	if !ok {
		t.Fatalf("error %T, want *protocol.Error", err)
	}
	if pe.Code != protocol.CodeInvalidArgument || pe.Message != "nope" {
		t.Errorf("error = %+v", pe)
	}
	if calls.Load() != 1 {
		t.Errorf("retried a non-retryable error %d times", calls.Load()-1)
	}
}

// TestEnvelopeLessErrorSynthesized: a proxy-style plain-text error page
// still becomes a typed error with the status-derived code.
func TestEnvelopeLessErrorSynthesized(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(0, time.Millisecond))
	_, err := c.Stats(context.Background())
	pe, ok := err.(*protocol.Error)
	if !ok {
		t.Fatalf("error %T, want *protocol.Error", err)
	}
	if pe.Code != protocol.CodeInternal {
		t.Errorf("code = %s", pe.Code)
	}
}

// TestStreamIterator walks a fake NDJSON stream through Next/Line/Err,
// blank lines and all.
func TestStreamIterator(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"done":1,"total":2,"pair":{"pair":"pt-en","types":3,"correspondences":9,"elapsedMs":0}}`)
		fmt.Fprintln(w)
		fmt.Fprintln(w, `{"done":2,"total":2,"finalAll":{"mode":"pivot","hub":"en","planned":[],"pairs":null,"clusters":[],"conflicts":0,"elapsedMs":0,"cache":{"pairEntries":0,"typeEntries":0,"hits":0,"misses":0,"restoredPairs":0,"restoredTypes":0}}}`)
	}))
	defer srv.Close()

	c, _ := New(srv.URL)
	stream, err := c.Stream(context.Background(), protocol.MatchRequest{All: true})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	if !stream.Next() {
		t.Fatalf("first Next failed: %v", stream.Err())
	}
	if p := stream.Line().Pair; p == nil || p.Pair != "pt-en" || p.Correspondences != 9 {
		t.Errorf("first line = %+v", stream.Line())
	}
	if !stream.Next() {
		t.Fatalf("second Next failed: %v", stream.Err())
	}
	if stream.Line().FinalAll == nil || stream.Line().FinalAll.Mode != "pivot" {
		t.Errorf("final line = %+v", stream.Line())
	}
	if stream.Next() {
		t.Error("Next past end of stream")
	}
	if err := stream.Err(); err != nil {
		t.Errorf("clean stream ended with %v", err)
	}
	if stream.Next() {
		t.Error("Next after done")
	}
}

// TestStreamDecodeError: garbage mid-stream surfaces through Err.
func TestStreamDecodeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"done":1,"total":1}`)
		fmt.Fprintln(w, `{{{not json`)
	}))
	defer srv.Close()

	c, _ := New(srv.URL)
	stream, err := c.Stream(context.Background(), protocol.MatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if !stream.Next() {
		t.Fatal("first line rejected")
	}
	if stream.Next() {
		t.Error("garbage line accepted")
	}
	if stream.Err() == nil {
		t.Error("decode error swallowed")
	}
}

// TestStreamErrorStatus: a non-200 on /v1/stream decodes the envelope
// instead of returning an iterator.
func TestStreamErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeInvalidArgument, "bad stream")})
	}))
	defer srv.Close()

	c, _ := New(srv.URL)
	_, err := c.Stream(context.Background(), protocol.MatchRequest{})
	pe, ok := err.(*protocol.Error)
	if !ok || pe.Code != protocol.CodeInvalidArgument {
		t.Fatalf("err = %v", err)
	}
}

// TestRequestShape pins what the client actually puts on the wire:
// method, path, content type, and the typed body.
func TestRequestShape(t *testing.T) {
	type seen struct {
		method, path, contentType string
		body                      protocol.MatchRequest
	}
	var got seen
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = seen{method: r.Method, path: r.URL.Path, contentType: r.Header.Get("Content-Type")}
		_ = json.NewDecoder(r.Body).Decode(&got.body)
		_ = json.NewEncoder(w).Encode(protocol.MatchAllResponse{Mode: "pivot"})
	}))
	defer srv.Close()

	c, _ := New(srv.URL)
	th := 0.7
	if _, err := c.MatchAll(context.Background(), protocol.MatchRequest{All: true, Mode: "direct", TSim: &th}); err != nil {
		t.Fatal(err)
	}
	if got.method != http.MethodPost || got.path != "/v1/matchall" || got.contentType != "application/json" {
		t.Errorf("request = %+v", got)
	}
	if !got.body.All || got.body.Mode != "direct" || got.body.TSim == nil || *got.body.TSim != 0.7 {
		t.Errorf("body = %+v", got.body)
	}
}

// TestRetryDecodesFresh: a corrupt 200 body on attempt one must not
// bleed partially-decoded state (map keys, stale fields) into the
// retry's successful decode.
func TestRetryDecodesFresh(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Truncated body: decodes byRoute before failing.
			fmt.Fprint(w, `{"requestsTotal":5,"byRoute":{"stale":1},"inFlight":`)
			return
		}
		fmt.Fprint(w, `{"requestsTotal":7,"inFlight":0,"shed":0,"panics":0}`)
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(1, time.Millisecond))
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics after retry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
	if m.RequestsTotal != 7 {
		t.Errorf("requestsTotal = %d, want 7", m.RequestsTotal)
	}
	if len(m.ByRoute) != 0 {
		t.Errorf("stale byRoute keys survived the retry: %v", m.ByRoute)
	}
}

// TestHedgeRacesSlowPrimary: with hedging enabled, a slow first request
// is raced by a backup after the hedge delay, and the backup's fast
// success wins without waiting out the primary.
func TestHedgeRacesSlowPrimary(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Primary: stall until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		_ = json.NewEncoder(w).Encode(protocol.MatchResponse{Pair: "vi-en"})
	}))
	defer srv.Close()
	defer close(release)

	c, _ := New(srv.URL, WithRetries(0, time.Millisecond), WithHedge(5*time.Millisecond))
	resp, err := c.Match(context.Background(), protocol.MatchRequest{Pair: "vi-en"})
	if err != nil {
		t.Fatalf("hedged Match: %v", err)
	}
	if resp.Pair != "vi-en" || calls.Load() != 2 {
		t.Errorf("resp=%+v calls=%d", resp, calls.Load())
	}
}

// TestHedgeFiresOnRetryableFailure: a fast retryable failure of the
// primary launches the backup immediately instead of waiting out the
// hedge delay; the backup's success is the call's result.
func TestHedgeFiresOnRetryableFailure(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeUnavailable, "shard down")})
			return
		}
		_ = json.NewEncoder(w).Encode(protocol.MatchResponse{Pair: "pt-en"})
	}))
	defer srv.Close()

	// Hedge delay far beyond the test's patience: only the fast-fail
	// path can launch the backup in time.
	c, _ := New(srv.URL, WithRetries(0, time.Millisecond), WithHedge(time.Hour))
	resp, err := c.Match(context.Background(), protocol.MatchRequest{Pair: "pt-en"})
	if err != nil {
		t.Fatalf("hedged Match: %v", err)
	}
	if resp.Pair != "pt-en" || calls.Load() != 2 {
		t.Errorf("resp=%+v calls=%d", resp, calls.Load())
	}
}

// TestHedgeBothFailReturnsPrimaryError: when primary and backup both
// fail, the primary's error surfaces (deterministic attribution).
func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeUnavailable, "all dead")})
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(0, time.Millisecond), WithHedge(time.Millisecond))
	_, err := c.Match(context.Background(), protocol.MatchRequest{})
	pe, ok := err.(*protocol.Error)
	if !ok {
		t.Fatalf("error %T, want *protocol.Error", err)
	}
	if pe.Code != protocol.CodeUnavailable {
		t.Errorf("code = %s", pe.Code)
	}
}

// TestMutatingCallsNeverHedge: Delta must issue exactly one request even
// on a hedging client whose delay has long elapsed.
func TestMutatingCallsNeverHedge(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond) // well past the hedge delay
		_ = json.NewEncoder(w).Encode(protocol.DeltaResponse{Added: 1})
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(0, time.Millisecond), WithHedge(time.Millisecond))
	resp, err := c.Delta(context.Background(), protocol.DeltaRequest{
		Upserts: []protocol.DeltaUpsert{{Lang: "en", Title: "X", Wikitext: ""}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Added != 1 || calls.Load() != 1 {
		t.Errorf("resp=%+v calls=%d (mutating call hedged?)", resp, calls.Load())
	}
}

// TestRetryBackoffJitter: the retry delay is drawn from [base/2, base]
// with a Retry-After floor. The jitter hook is deterministic here, so
// the exact waits are assertable.
func TestRetryBackoffJitter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(protocol.ErrorEnvelope{Error: protocol.Errorf(protocol.CodeOverloaded, "full")})
			return
		}
		_ = json.NewEncoder(w).Encode(protocol.MatchResponse{Pair: "pt-en"})
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(1, 10*time.Millisecond))
	var spans []time.Duration
	c.jitter = func(span time.Duration) time.Duration {
		spans = append(spans, span)
		return span // deterministic top of the jitter window
	}
	start := time.Now()
	if _, err := c.Match(context.Background(), protocol.MatchRequest{}); err != nil {
		t.Fatal(err)
	}
	// One retry at full jitter: delay = base/2 + base/2 = 10ms.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("retried after %v, want >= 10ms", elapsed)
	}
	// The backoff span and the Retry-After span (0s ⇒ no floor call may
	// be skipped) were both consulted.
	if len(spans) == 0 || spans[0] != 5*time.Millisecond {
		t.Errorf("jitter spans = %v, want first span 5ms (base/2)", spans)
	}
}

// TestRequestIDForwarded: a context stamped with a request ID (the
// service middleware's doing on a router) reaches the server as the
// X-Request-Id header; an unstamped context sends none, and an invalid
// stamp is dropped.
func TestRequestIDForwarded(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Request-Id"))
		_ = json.NewEncoder(w).Encode(protocol.Health{Status: "ok"})
	}))
	defer srv.Close()

	c, _ := New(srv.URL, WithRetries(0, time.Millisecond))
	cases := []struct {
		id   string
		want string
	}{
		{"req-42", "req-42"},
		{"", ""},
		{"bad\nid", ""},
	}
	for _, tc := range cases {
		ctx := context.Background()
		if tc.id != "" {
			ctx = protocol.ContextWithRequestID(ctx, tc.id)
		}
		if _, err := c.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
		if got.Load().(string) != tc.want {
			t.Errorf("id %q: header %q, want %q", tc.id, got.Load(), tc.want)
		}
	}
}

// TestLocalDelta: the in-process backend serves Delta through the same
// session path as the HTTP handler.
func TestLocalDelta(t *testing.T) {
	c := wiki.NewCorpus()
	if err := c.Add(&wiki.Article{Language: wiki.English, Title: "Seed", Type: "city"}); err != nil {
		t.Fatal(err)
	}
	l := NewLocal(service.New(c))
	resp, err := l.Delta(context.Background(), protocol.DeltaRequest{
		Removes: []protocol.DeltaRef{{Lang: "en", Title: "Seed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Removed != 1 {
		t.Errorf("removed = %d, want 1", resp.Removed)
	}
}
