package wiki

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSuchArticle marks a delta that removes an article the corpus
// does not hold.
var ErrNoSuchArticle = errors.New("no such article")

// Delta is a batch of corpus edits: whole-article upserts (add or
// replace) and removals. A Delta is applied copy-on-write with
// Corpus.WithDelta.
type Delta struct {
	Upserts []*Article
	Removes []Key
}

// DeltaEffect summarizes what a Delta changed, in the terms the
// artifact cache needs for fine-grained invalidation.
type DeltaEffect struct {
	Added, Updated, Removed int
	// Types records, per language the delta touched, the entity types
	// whose article set changed — the union of every edited article's
	// old and new types, untyped articles excluded. A touched language
	// is present even when its type set is empty (e.g. an edit to an
	// untyped article), because titles and cross-links still feed the
	// pair-level dictionary.
	Types map[Language]map[string]bool
}

// Languages returns the languages the delta touched, sorted.
func (e *DeltaEffect) Languages() []Language {
	out := make([]Language, 0, len(e.Types))
	for l := range e.Types {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WithDelta applies the edit batch copy-on-write: it returns a new
// corpus sharing the untouched article values (articles are immutable
// throughout the pipeline) while c remains exactly as it was, so
// readers holding c — including in-flight artifact builds — are never
// disturbed.
//
// Per-language insertion order is preserved for surviving articles,
// with replacements substituted in place and additions appended (in
// key order); Corpus.Pairs therefore enumerates unchanged article
// pairs in the same order as before, which keeps artifacts built from
// untouched entity types byte-identical across the swap.
//
// The whole batch validates before anything is applied: a nil or
// invalid upsert, a duplicate edit for one key, an upsert-and-remove
// of the same key, a removal of an absent article (ErrNoSuchArticle)
// or an empty delta each fail the call with no effect.
func (c *Corpus) WithDelta(d Delta) (*Corpus, *DeltaEffect, error) {
	if len(d.Upserts) == 0 && len(d.Removes) == 0 {
		return nil, nil, errors.New("delta: no edits")
	}
	up := make(map[Key]*Article, len(d.Upserts))
	for _, a := range d.Upserts {
		if a == nil {
			return nil, nil, errors.New("delta: nil upsert")
		}
		if err := a.Validate(); err != nil {
			return nil, nil, fmt.Errorf("delta: %w", err)
		}
		k := a.Key()
		if _, dup := up[k]; dup {
			return nil, nil, fmt.Errorf("delta: duplicate upsert %s", k)
		}
		up[k] = a
	}
	rm := make(map[Key]bool, len(d.Removes))
	for _, k := range d.Removes {
		if rm[k] {
			return nil, nil, fmt.Errorf("delta: duplicate remove %s", k)
		}
		if _, both := up[k]; both {
			return nil, nil, fmt.Errorf("delta: %s both upserted and removed", k)
		}
		if _, ok := c.byKey[k]; !ok {
			return nil, nil, fmt.Errorf("delta: remove %s: %w", k, ErrNoSuchArticle)
		}
		rm[k] = true
	}

	eff := &DeltaEffect{Types: make(map[Language]map[string]bool)}
	touch := func(lang Language, types ...string) {
		tm := eff.Types[lang]
		if tm == nil {
			tm = make(map[string]bool)
			eff.Types[lang] = tm
		}
		for _, t := range types {
			if t != "" {
				tm[t] = true
			}
		}
	}

	out := NewCorpus()
	for _, lang := range c.langList {
		for _, a := range c.byLang[lang] {
			k := a.Key()
			switch {
			case rm[k]:
				eff.Removed++
				touch(lang, a.Type)
			case up[k] != nil:
				repl := up[k]
				eff.Updated++
				touch(lang, a.Type, repl.Type)
				// Clone the caller's article so later mutations on their
				// side cannot reach into the corpus.
				out.MustAdd(repl.Clone())
				delete(up, k)
			default:
				out.MustAdd(a)
			}
		}
	}
	added := make([]Key, 0, len(up))
	for k := range up {
		added = append(added, k)
	}
	sort.Slice(added, func(i, j int) bool {
		if added[i].Language != added[j].Language {
			return added[i].Language < added[j].Language
		}
		return added[i].Title < added[j].Title
	})
	for _, k := range added {
		a := up[k]
		eff.Added++
		touch(a.Language, a.Type)
		out.MustAdd(a.Clone())
	}
	return out, eff, nil
}
