package wiki

import "sort"

// Entity-type assignment from categories. Section 2 of the paper lists
// three mechanisms for typing an article: the infobox template, the
// article's categories, and clustering by infobox structure. ParsePage
// derives the type from the template; this file provides the
// category-based alternative, so corpora whose infobox templates are
// unusable (bare "{{Infobox}}" without a type, template-less records)
// can still be typed.

// CategoryTypeMap maps a category name to the entity-type string
// articles carrying it should receive, per language.
type CategoryTypeMap map[Language]map[string]string

// AssignTypesFromCategories fills in the Type of every article that has
// none, using its categories and the mapping. It returns how many
// articles were typed. Articles typed this way are also added to the
// corpus's type index.
func (c *Corpus) AssignTypesFromCategories(m CategoryTypeMap) int {
	n := 0
	for _, lang := range c.Languages() {
		langMap := m[lang]
		if langMap == nil {
			continue
		}
		for _, a := range c.Articles(lang) {
			if a.Type != "" {
				continue
			}
			for _, cat := range a.Categories {
				typ, ok := langMap[cat]
				if !ok {
					continue
				}
				a.Type = typ
				tm := c.byType[lang]
				if tm == nil {
					tm = make(map[string][]*Article)
					c.byType[lang] = tm
				}
				tm[typ] = append(tm[typ], a)
				n++
				break
			}
		}
	}
	return n
}

// CategoryIndex builds a category → article-count table for one
// language, useful for deriving a CategoryTypeMap by inspection.
func (c *Corpus) CategoryIndex(lang Language) []struct {
	Category string
	Count    int
} {
	counts := map[string]int{}
	for _, a := range c.Articles(lang) {
		for _, cat := range a.Categories {
			counts[cat]++
		}
	}
	out := make([]struct {
		Category string
		Count    int
	}, 0, len(counts))
	for cat, n := range counts {
		out = append(out, struct {
			Category string
			Count    int
		}{cat, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Category < out[j].Category
	})
	return out
}
