package wiki

import "testing"

func TestAssignTypesFromCategories(t *testing.T) {
	c := NewCorpus()
	typed := &Article{Language: English, Title: "Typed", Type: "film",
		Categories: []string{"film"},
		Infobox:    &Infobox{Template: "Infobox film", Attrs: []AttributeValue{{Name: "x"}}}}
	untyped := &Article{Language: English, Title: "Untyped",
		Categories: []string{"noise", "film"},
		Infobox:    &Infobox{Template: "Box", Attrs: []AttributeValue{{Name: "y"}}}}
	unknown := &Article{Language: English, Title: "Unknown",
		Categories: []string{"something else"}}
	c.MustAdd(typed)
	c.MustAdd(untyped)
	c.MustAdd(unknown)

	n := c.AssignTypesFromCategories(CategoryTypeMap{
		English: {"film": "film"},
	})
	if n != 1 {
		t.Fatalf("assigned = %d, want 1", n)
	}
	if untyped.Type != "film" {
		t.Errorf("untyped article type = %q", untyped.Type)
	}
	if unknown.Type != "" {
		t.Errorf("unknown article typed as %q", unknown.Type)
	}
	// The type index now includes the newly typed article.
	if got := len(c.OfType(English, "film")); got != 2 {
		t.Errorf("OfType = %d, want 2", got)
	}
	// Already-typed articles are untouched and not double-indexed.
	if typed.Type != "film" {
		t.Errorf("typed article type changed: %q", typed.Type)
	}
}

func TestAssignTypesMissingLanguage(t *testing.T) {
	c := NewCorpus()
	c.MustAdd(&Article{Language: Portuguese, Title: "X", Categories: []string{"filme"}})
	if n := c.AssignTypesFromCategories(CategoryTypeMap{English: {"film": "film"}}); n != 0 {
		t.Errorf("assigned = %d, want 0", n)
	}
}

func TestCategoryIndex(t *testing.T) {
	c := NewCorpus()
	c.MustAdd(&Article{Language: English, Title: "A", Categories: []string{"x", "y"}})
	c.MustAdd(&Article{Language: English, Title: "B", Categories: []string{"x"}})
	idx := c.CategoryIndex(English)
	if len(idx) != 2 || idx[0].Category != "x" || idx[0].Count != 2 {
		t.Errorf("index = %v", idx)
	}
}
