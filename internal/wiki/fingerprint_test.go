package wiki

import "testing"

func fpArticle(lang Language, title, typ string) *Article {
	a := &Article{Language: lang, Title: title, Type: typ}
	a.Infobox = &Infobox{Template: "Infobox " + typ}
	a.Infobox.Set("name", title, Link{Target: title})
	return a
}

func TestFingerprintStableAcrossInsertionOrder(t *testing.T) {
	c1, c2 := NewCorpus(), NewCorpus()
	a := fpArticle(English, "Casablanca", "film")
	b := fpArticle(English, "Vertigo", "film")
	p := fpArticle(Portuguese, "Casablanca (filme)", "filme")
	p.SetCrossLink(English, "Casablanca")
	for _, art := range []*Article{a, b, p} {
		c1.MustAdd(art.Clone())
	}
	for _, art := range []*Article{p, b, a} {
		c2.MustAdd(art.Clone())
	}
	if f1, f2 := c1.Fingerprint(), c2.Fingerprint(); f1 != f2 {
		t.Errorf("fingerprint depends on insertion order: %x != %x", f1, f2)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Corpus {
		c := NewCorpus()
		c.MustAdd(fpArticle(English, "Casablanca", "film"))
		return c
	}
	f0 := base().Fingerprint()

	mutations := map[string]func(c *Corpus){
		"added article": func(c *Corpus) { c.MustAdd(fpArticle(English, "Vertigo", "film")) },
		"edited value": func(c *Corpus) {
			a, _ := c.Get(English, "Casablanca")
			a.Infobox.Set("name", "Casablanca (1942)")
		},
		"added attribute": func(c *Corpus) {
			a, _ := c.Get(English, "Casablanca")
			a.Infobox.Set("director", "Michael Curtiz")
		},
		"added cross-link": func(c *Corpus) {
			a, _ := c.Get(English, "Casablanca")
			a.SetCrossLink(Portuguese, "Casablanca (filme)")
		},
	}
	for name, mutate := range mutations {
		c := base()
		mutate(c)
		if c.Fingerprint() == f0 {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	if base().Fingerprint() != f0 {
		t.Error("identical corpus produced a different fingerprint")
	}
}

func TestFingerprintFieldBoundaries(t *testing.T) {
	// "ab"+"c" and "a"+"bc" in adjacent fields must not collide thanks to
	// length prefixes.
	c1, c2 := NewCorpus(), NewCorpus()
	a1 := &Article{Language: English, Title: "X", Type: "ab", Categories: []string{"c"}}
	a2 := &Article{Language: English, Title: "X", Type: "a", Categories: []string{"bc"}}
	c1.MustAdd(a1)
	c2.MustAdd(a2)
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Error("field boundary collision")
	}
}
