package wiki

import (
	"fmt"
	"sort"
	"strings"
)

// Link is a hyperlink inside an attribute value, written in wikitext as
// [[Target]] or [[Target|anchor text]]. Target is the title of the landing
// article in the same language edition; Anchor is the visible text.
type Link struct {
	Target string
	Anchor string
}

// String renders the link back to its wikitext form.
func (l Link) String() string {
	if l.Anchor == "" || l.Anchor == l.Target {
		return "[[" + l.Target + "]]"
	}
	return "[[" + l.Target + "|" + l.Anchor + "]]"
}

// AttributeValue is one attribute–value pair ⟨a, v⟩ of an infobox.
// Text is the raw value with link markup stripped to anchor text; Links
// holds the hyperlinks that appeared inside the value.
type AttributeValue struct {
	Name  string
	Text  string
	Links []Link
}

// Clone returns a deep copy of the attribute–value pair.
func (av AttributeValue) Clone() AttributeValue {
	cp := av
	cp.Links = append([]Link(nil), av.Links...)
	return cp
}

// Infobox is the structured record attached to an article: an ordered set
// of attribute–value pairs plus the template name it was instantiated from
// (e.g. "Infobox film").
type Infobox struct {
	Template string
	Attrs    []AttributeValue
}

// Get returns the value of the named attribute and whether it is present.
// Attribute names are compared exactly; callers that need normalization
// should normalize before storing.
func (ib *Infobox) Get(name string) (AttributeValue, bool) {
	for _, av := range ib.Attrs {
		if av.Name == name {
			return av, true
		}
	}
	return AttributeValue{}, false
}

// Has reports whether the named attribute is present.
func (ib *Infobox) Has(name string) bool {
	_, ok := ib.Get(name)
	return ok
}

// Set replaces the value of the named attribute, appending it if absent.
func (ib *Infobox) Set(name, text string, links ...Link) {
	for i := range ib.Attrs {
		if ib.Attrs[i].Name == name {
			ib.Attrs[i].Text = text
			ib.Attrs[i].Links = links
			return
		}
	}
	ib.Attrs = append(ib.Attrs, AttributeValue{Name: name, Text: text, Links: links})
}

// Schema returns the infobox's attribute names in order of appearance —
// the schema S_I of Section 2.
func (ib *Infobox) Schema() []string {
	names := make([]string, len(ib.Attrs))
	for i, av := range ib.Attrs {
		names[i] = av.Name
	}
	return names
}

// Len returns the number of attribute–value pairs.
func (ib *Infobox) Len() int { return len(ib.Attrs) }

// Clone returns a deep copy of the infobox.
func (ib *Infobox) Clone() *Infobox {
	cp := &Infobox{Template: ib.Template, Attrs: make([]AttributeValue, len(ib.Attrs))}
	for i, av := range ib.Attrs {
		cp.Attrs[i] = av.Clone()
	}
	return cp
}

// Article is a Wikipedia page: a title in a language edition, an optional
// infobox, the entity type it describes, its categories, and its
// cross-language links (language → title of the equivalent article).
type Article struct {
	Language   Language
	Title      string
	Type       string
	Infobox    *Infobox
	Categories []string
	CrossLinks map[Language]string
}

// Key identifies an article uniquely within a corpus.
type Key struct {
	Language Language
	Title    string
}

// String renders the key as "en:Title".
func (k Key) String() string { return fmt.Sprintf("%s:%s", k.Language, k.Title) }

// Key returns the article's corpus key.
func (a *Article) Key() Key { return Key{Language: a.Language, Title: a.Title} }

// CrossLink returns the title of the equivalent article in lang, if any.
func (a *Article) CrossLink(lang Language) (string, bool) {
	t, ok := a.CrossLinks[lang]
	return t, ok
}

// SetCrossLink records that the article links to title in lang.
func (a *Article) SetCrossLink(lang Language, title string) {
	if a.CrossLinks == nil {
		a.CrossLinks = make(map[Language]string)
	}
	a.CrossLinks[lang] = title
}

// SortedCrossLinks returns the article's cross-language links in a stable
// order, for deterministic rendering.
func (a *Article) SortedCrossLinks() []struct {
	Language Language
	Title    string
} {
	out := make([]struct {
		Language Language
		Title    string
	}, 0, len(a.CrossLinks))
	for l, t := range a.CrossLinks {
		out = append(out, struct {
			Language Language
			Title    string
		}{l, t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Language < out[j].Language })
	return out
}

// Clone returns a deep copy of the article.
func (a *Article) Clone() *Article {
	cp := &Article{
		Language:   a.Language,
		Title:      a.Title,
		Type:       a.Type,
		Categories: append([]string(nil), a.Categories...),
	}
	if a.Infobox != nil {
		cp.Infobox = a.Infobox.Clone()
	}
	if a.CrossLinks != nil {
		cp.CrossLinks = make(map[Language]string, len(a.CrossLinks))
		for l, t := range a.CrossLinks {
			cp.CrossLinks[l] = t
		}
	}
	return cp
}

// Validate reports the first structural problem with the article, or nil.
func (a *Article) Validate() error {
	if !a.Language.Valid() {
		return fmt.Errorf("article %q: invalid language %q", a.Title, a.Language)
	}
	if strings.TrimSpace(a.Title) == "" {
		return fmt.Errorf("article in %s: empty title", a.Language)
	}
	if a.Infobox != nil {
		seen := make(map[string]bool, len(a.Infobox.Attrs))
		for _, av := range a.Infobox.Attrs {
			if strings.TrimSpace(av.Name) == "" {
				return fmt.Errorf("article %s: infobox attribute with empty name", a.Key())
			}
			if seen[av.Name] {
				return fmt.Errorf("article %s: duplicate infobox attribute %q", a.Key(), av.Name)
			}
			seen[av.Name] = true
		}
	}
	for l := range a.CrossLinks {
		if !l.Valid() {
			return fmt.Errorf("article %s: invalid cross-link language %q", a.Key(), l)
		}
		if l == a.Language {
			return fmt.Errorf("article %s: cross-link to own language", a.Key())
		}
	}
	return nil
}
