package wiki

import (
	"fmt"
	"testing"
)

func TestOrientPair(t *testing.T) {
	cases := []struct {
		a, b, hub Language
		want      string
	}{
		{Portuguese, English, English, "pt-en"},
		{English, Portuguese, English, "pt-en"},
		{Portuguese, Vietnamese, English, "pt-vi"},
		{Vietnamese, Portuguese, English, "pt-vi"},
		{English, Vietnamese, Portuguese, "en-vi"},
		{Vietnamese, English, "", "en-vi"},
	}
	for _, c := range cases {
		if got := OrientPair(c.a, c.b, c.hub).String(); got != c.want {
			t.Errorf("OrientPair(%s, %s, hub=%s) = %s, want %s", c.a, c.b, c.hub, got, c.want)
		}
	}
}

func TestAllPairs(t *testing.T) {
	langs := []Language{Vietnamese, English, Portuguese, English} // dup + unsorted
	got := fmt.Sprint(AllPairs(langs, English))
	if got != "[pt-en pt-vi vi-en]" {
		t.Errorf("AllPairs = %v", got)
	}
	if n := len(AllPairs([]Language{English}, English)); n != 0 {
		t.Errorf("AllPairs single language = %d pairs", n)
	}
	// Four languages: 6 unordered pairs.
	if n := len(AllPairs([]Language{"de", "en", "fr", "pt"}, English)); n != 6 {
		t.Errorf("AllPairs 4 languages = %d pairs, want 6", n)
	}
}

func TestHubPairs(t *testing.T) {
	got := fmt.Sprint(HubPairs([]Language{Vietnamese, English, Portuguese}, English))
	if got != "[pt-en vi-en]" {
		t.Errorf("HubPairs = %v", got)
	}
	// The hub itself contributes no pair even when absent from the set.
	got = fmt.Sprint(HubPairs([]Language{Portuguese, Vietnamese}, English))
	if got != "[pt-en vi-en]" {
		t.Errorf("HubPairs without hub in set = %v", got)
	}
}
