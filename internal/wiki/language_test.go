package wiki

import "testing"

func TestLanguageValid(t *testing.T) {
	valid := []Language{
		"en", "pt", "vi", "de",
		"zh-min-nan", "be-tarask", "nds-nl", "map-bms", "roa-rup",
		"be-x-old", "fiu-vro", "cbk-zam",
		"a", "x1", "t2g",
	}
	for _, l := range valid {
		if !l.Valid() {
			t.Errorf("Language(%q).Valid() = false, want true", l)
		}
	}
	invalid := []Language{
		"", "EN", "En", "zh-Min-nan", "pt_BR", "pt.br",
		"-en", "en-", "zh--nan", "-", "--",
		"1en", "9", "0-en",
		"en ", " en", "e n", "en\n",
	}
	for _, l := range invalid {
		if l.Valid() {
			t.Errorf("Language(%q).Valid() = true, want false", l)
		}
	}
}

func TestLanguagePairStringHyphenated(t *testing.T) {
	cases := []struct {
		pair LanguagePair
		want string
	}{
		{LanguagePair{A: Portuguese, B: English}, "pt-en"},
		{LanguagePair{A: "zh-min-nan", B: English}, "zh-min-nan:en"},
		{LanguagePair{A: "de", B: "be-tarask"}, "de:be-tarask"},
		{LanguagePair{A: "nds-nl", B: "zh-min-nan"}, "nds-nl:zh-min-nan"},
	}
	for _, c := range cases {
		if got := c.pair.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.pair, got, c.want)
		}
	}
}

func TestOrientPairHyphenated(t *testing.T) {
	hub := Language("en")
	// Hub always lands on the B side regardless of code shape.
	if got := OrientPair("zh-min-nan", hub, hub); got != (LanguagePair{A: "zh-min-nan", B: hub}) {
		t.Errorf("OrientPair(zh-min-nan, en, en) = %v", got)
	}
	if got := OrientPair(hub, "zh-min-nan", hub); got != (LanguagePair{A: "zh-min-nan", B: hub}) {
		t.Errorf("OrientPair(en, zh-min-nan, en) = %v", got)
	}
	// Non-hub pairs order lexicographically.
	if got := OrientPair("nds-nl", "be-tarask", hub); got != (LanguagePair{A: "be-tarask", B: "nds-nl"}) {
		t.Errorf("OrientPair(nds-nl, be-tarask, en) = %v", got)
	}
}
