package wiki

import (
	"strings"
	"testing"
)

const lastEmperorWikitext = `{{Infobox film
| name = The Last Emperor
| directed by = [[Bernardo Bertolucci]]
| produced by = [[Jeremy Thomas]]
| written by = [[Mark Peploe]], [[Bernardo Bertolucci]]
| starring = [[John Lone]], [[Joan Chen]], [[Peter O'Toole]]
| music by = [[Ryuichi Sakamoto]], [[David Byrne]]
| release date = {{start date|1987|10|4}}
| running time = 160 minutes
| country = Italy, United Kingdom, China
| language = English
| budget = $23 million<ref>Box Office Mojo</ref>
}}

'''The Last Emperor''' is a 1987 epic biographical drama film.

[[Category:1987 films]]
[[Category:Films directed by Bernardo Bertolucci]]
[[pt:O Último Imperador]]
[[vi:Hoàng đế cuối cùng]]
`

func TestParsePageFilm(t *testing.T) {
	a, err := ParsePage(English, "The Last Emperor", lastEmperorWikitext)
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if a.Type != "film" {
		t.Errorf("type = %q, want film", a.Type)
	}
	if a.Infobox == nil {
		t.Fatal("no infobox parsed")
	}
	if got := a.Infobox.Len(); got != 11 {
		t.Errorf("attribute count = %d, want 11 (schema: %v)", got, a.Infobox.Schema())
	}
	dir, ok := a.Infobox.Get("directed by")
	if !ok {
		t.Fatal("missing attribute 'directed by'")
	}
	if dir.Text != "Bernardo Bertolucci" {
		t.Errorf("directed by text = %q", dir.Text)
	}
	if len(dir.Links) != 1 || dir.Links[0].Target != "Bernardo Bertolucci" {
		t.Errorf("directed by links = %v", dir.Links)
	}
	star, _ := a.Infobox.Get("starring")
	if len(star.Links) != 3 {
		t.Errorf("starring links = %v, want 3", star.Links)
	}
	if star.Text != "John Lone, Joan Chen, Peter O'Toole" {
		t.Errorf("starring text = %q", star.Text)
	}
	rel, _ := a.Infobox.Get("release date")
	if rel.Text != "1987 10 4" {
		t.Errorf("release date text = %q, want flattened template args", rel.Text)
	}
	budget, _ := a.Infobox.Get("budget")
	if budget.Text != "$23 million" {
		t.Errorf("budget text = %q, want ref stripped", budget.Text)
	}
	if len(a.Categories) != 2 {
		t.Errorf("categories = %v", a.Categories)
	}
	if pt, ok := a.CrossLink(Portuguese); !ok || pt != "O Último Imperador" {
		t.Errorf("pt cross-link = %q, %v", pt, ok)
	}
	if vi, ok := a.CrossLink(Vietnamese); !ok || vi != "Hoàng đế cuối cùng" {
		t.Errorf("vi cross-link = %q, %v", vi, ok)
	}
}

func TestParsePageNoInfobox(t *testing.T) {
	a, err := ParsePage(English, "Plain", "Just text with a [[Link]].\n[[Category:Things]]")
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if a.Infobox != nil {
		t.Error("expected nil infobox")
	}
	if a.Type != "" {
		t.Errorf("type = %q, want empty", a.Type)
	}
	if len(a.Categories) != 1 || a.Categories[0] != "Things" {
		t.Errorf("categories = %v", a.Categories)
	}
}

func TestParsePageUnbalancedInfobox(t *testing.T) {
	_, err := ParsePage(English, "Broken", "{{Infobox film\n| name = X\n")
	if err == nil {
		t.Fatal("expected error for unbalanced infobox braces")
	}
}

func TestParsePagePortugueseCategories(t *testing.T) {
	text := "{{Infobox filme\n| título = O Último Imperador\n}}\n[[Categoria:Filmes de 1987]]\n[[en:The Last Emperor]]"
	a, err := ParsePage(Portuguese, "O Último Imperador", text)
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if a.Type != "filme" {
		t.Errorf("type = %q", a.Type)
	}
	if len(a.Categories) != 1 || a.Categories[0] != "Filmes de 1987" {
		t.Errorf("categories = %v", a.Categories)
	}
	if en, ok := a.CrossLink(English); !ok || en != "The Last Emperor" {
		t.Errorf("en cross-link = %q, %v", en, ok)
	}
}

func TestTemplateType(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Infobox film", "film"},
		{"infobox Film", "film"},
		{"Infobox comics character", "comics character"},
		{"Infobox", ""},
		{"Taxobox", "taxobox"},
		{"  Infobox   album  ", "album"},
	}
	for _, c := range cases {
		if got := TemplateType(c.in); got != c.want {
			t.Errorf("TemplateType(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStripMarkup(t *testing.T) {
	cases := []struct{ in, want string }{
		{"[[United States]]", "United States"},
		{"[[United States|USA]]", "USA"},
		{"'''bold''' and ''italic''", "bold and italic"},
		{"a<br>b", "a b"},
		{"{{convert|160|min}}", "160 min"},
		{"plain", "plain"},
		{"x<ref name=a>cite</ref>y", "xy"},
		{"before<!-- hidden -->after", "beforeafter"},
		{"[[John Lone]], [[Joan Chen]]", "John Lone, Joan Chen"},
		{"it's", "it's"},
		{"", ""},
	}
	for _, c := range cases {
		if got := StripMarkup(c.in); got != c.want {
			t.Errorf("StripMarkup(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExtractLinks(t *testing.T) {
	links := ExtractLinks("[[A]], [[B|bee]], [[Category:skip]] and [[C]]")
	if len(links) != 3 {
		t.Fatalf("links = %v, want 3", links)
	}
	if links[1].Target != "B" || links[1].Anchor != "bee" {
		t.Errorf("links[1] = %v", links[1])
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	orig := &Article{
		Language: Portuguese,
		Title:    "O Último Imperador",
		Type:     "filme",
		Infobox: &Infobox{
			Template: "Infobox filme",
			Attrs: []AttributeValue{
				{Name: "título", Text: "O Último Imperador"},
				{Name: "direção", Text: "Bernardo Bertolucci", Links: []Link{{Target: "Bernardo Bertolucci", Anchor: "Bernardo Bertolucci"}}},
				{Name: "elenco original", Text: "John Lone, Joan Chen", Links: []Link{
					{Target: "John Lone", Anchor: "John Lone"},
					{Target: "Joan Chen", Anchor: "Joan Chen"},
				}},
				{Name: "duração", Text: "165 min"},
			},
		},
		Categories: []string{"Filmes de 1987"},
		CrossLinks: map[Language]string{English: "The Last Emperor", Vietnamese: "Hoàng đế cuối cùng"},
	}
	text := RenderPage(orig)
	got, err := ParsePage(orig.Language, orig.Title, text)
	if err != nil {
		t.Fatalf("ParsePage(rendered): %v", err)
	}
	if got.Type != orig.Type {
		t.Errorf("type = %q, want %q", got.Type, orig.Type)
	}
	if got.Infobox == nil || got.Infobox.Len() != orig.Infobox.Len() {
		t.Fatalf("infobox = %+v", got.Infobox)
	}
	for _, want := range orig.Infobox.Attrs {
		av, ok := got.Infobox.Get(want.Name)
		if !ok {
			t.Errorf("missing attribute %q after round-trip", want.Name)
			continue
		}
		if av.Text != want.Text {
			t.Errorf("attr %q text = %q, want %q", want.Name, av.Text, want.Text)
		}
		if len(av.Links) != len(want.Links) {
			t.Errorf("attr %q links = %v, want %v", want.Name, av.Links, want.Links)
		}
	}
	if len(got.CrossLinks) != 2 {
		t.Errorf("cross-links = %v", got.CrossLinks)
	}
	if len(got.Categories) != 1 {
		t.Errorf("categories = %v", got.Categories)
	}
}

func TestRenderPageContainsInterlanguageLinks(t *testing.T) {
	a := &Article{Language: English, Title: "X", CrossLinks: map[Language]string{Portuguese: "Xis"}}
	text := RenderPage(a)
	if !strings.Contains(text, "[[pt:Xis]]") {
		t.Errorf("rendered page missing interlanguage link:\n%s", text)
	}
}
