// Package wiki defines the Wikipedia data model used throughout the
// repository: articles, infoboxes, attribute–value pairs, hyperlinks,
// cross-language links, and the Corpus container with its indices.
//
// The model follows Section 2 of Nguyen et al., "Multilingual Schema
// Matching for Wikipedia Infoboxes" (PVLDB 5(2), 2011): an article A in
// language L describes an entity E, carries an infobox I (a structured
// record of attribute–value pairs), and may link to articles describing
// the same entity in other languages through cross-language links.
package wiki

import "fmt"

// Language identifies a Wikipedia language edition by its subdomain code
// (e.g. "en" for English, "pt" for Portuguese, "vi" for Vietnamese).
type Language string

// The three language editions used in the paper's evaluation.
const (
	English    Language = "en"
	Portuguese Language = "pt"
	Vietnamese Language = "vi"
)

// String returns the language code.
func (l Language) String() string { return string(l) }

// Valid reports whether l is a non-empty language code consisting of
// lowercase ASCII letters (the form used by interlanguage link prefixes).
func (l Language) Valid() bool {
	if len(l) == 0 {
		return false
	}
	for _, r := range l {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// LanguagePair names an ordered pair of language editions whose infobox
// schemas are being matched, e.g. Portuguese–English.
type LanguagePair struct {
	A, B Language
}

// String renders the pair as "pt-en".
func (p LanguagePair) String() string { return fmt.Sprintf("%s-%s", p.A, p.B) }

// Reverse returns the pair with the two languages swapped.
func (p LanguagePair) Reverse() LanguagePair { return LanguagePair{A: p.B, B: p.A} }

// Contains reports whether l is one of the pair's languages.
func (p LanguagePair) Contains(l Language) bool { return p.A == l || p.B == l }

// Other returns the pair's other language given one of them; it returns
// the empty Language if l is not part of the pair.
func (p LanguagePair) Other(l Language) Language {
	switch l {
	case p.A:
		return p.B
	case p.B:
		return p.A
	}
	return ""
}

// PtEn and VnEn are the two language pairs evaluated in the paper.
var (
	PtEn = LanguagePair{A: Portuguese, B: English}
	VnEn = LanguagePair{A: Vietnamese, B: English}
)
