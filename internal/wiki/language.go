// Package wiki defines the Wikipedia data model used throughout the
// repository: articles, infoboxes, attribute–value pairs, hyperlinks,
// cross-language links, and the Corpus container with its indices.
//
// The model follows Section 2 of Nguyen et al., "Multilingual Schema
// Matching for Wikipedia Infoboxes" (PVLDB 5(2), 2011): an article A in
// language L describes an entity E, carries an infobox I (a structured
// record of attribute–value pairs), and may link to articles describing
// the same entity in other languages through cross-language links.
package wiki

import (
	"fmt"
	"sort"
	"strings"
)

// Language identifies a Wikipedia language edition by its subdomain code
// (e.g. "en" for English, "pt" for Portuguese, "vi" for Vietnamese).
type Language string

// The three language editions used in the paper's evaluation.
const (
	English    Language = "en"
	Portuguese Language = "pt"
	Vietnamese Language = "vi"
)

// String returns the language code.
func (l Language) String() string { return string(l) }

// Valid reports whether l is a well-formed language edition code: one
// or more segments of lowercase ASCII letters and digits separated by
// single hyphens, starting with a letter. This is the form used by
// interlanguage link prefixes and Wikipedia subdomains, and it covers
// the long-tail editions ("zh-min-nan", "be-tarask", "nds-nl",
// "map-bms") as well as the plain two-letter codes. Uppercase, empty
// codes, and leading/trailing/doubled hyphens are rejected.
func (l Language) Valid() bool {
	if len(l) == 0 || l[0] < 'a' || l[0] > 'z' {
		return false
	}
	prevHyphen := false
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			prevHyphen = false
		case c == '-':
			if prevHyphen {
				return false
			}
			prevHyphen = true
		default:
			return false
		}
	}
	return !prevHyphen
}

// LanguagePair names an ordered pair of language editions whose infobox
// schemas are being matched, e.g. Portuguese–English.
type LanguagePair struct {
	A, B Language
}

// String renders the pair as "pt-en". When either code itself contains
// a hyphen ("zh-min-nan"), the sides are joined with a colon instead
// ("zh-min-nan:en") so the rendering stays unambiguous and parseable:
// protocol.ParsePair(p.String()) round-trips for every valid pair.
func (p LanguagePair) String() string {
	if strings.ContainsRune(string(p.A), '-') || strings.ContainsRune(string(p.B), '-') {
		return fmt.Sprintf("%s:%s", p.A, p.B)
	}
	return fmt.Sprintf("%s-%s", p.A, p.B)
}

// Reverse returns the pair with the two languages swapped.
func (p LanguagePair) Reverse() LanguagePair { return LanguagePair{A: p.B, B: p.A} }

// Contains reports whether l is one of the pair's languages.
func (p LanguagePair) Contains(l Language) bool { return p.A == l || p.B == l }

// Other returns the pair's other language given one of them; it returns
// the empty Language if l is not part of the pair.
func (p LanguagePair) Other(l Language) Language {
	switch l {
	case p.A:
		return p.B
	case p.B:
		return p.A
	}
	return ""
}

// PtEn and VnEn are the two language pairs evaluated in the paper.
var (
	PtEn = LanguagePair{A: Portuguese, B: English}
	VnEn = LanguagePair{A: Vietnamese, B: English}
)

// OrientPair orders two languages into the canonical pair used by the
// all-pairs machinery: the hub (when one of them is the hub) goes on the
// B side — matching the paper's other-to-English orientation (Pt–En,
// Vi–En) — and otherwise the languages are ordered lexicographically.
// Canonical orientation is what lets a batch and ad-hoc pairwise calls
// share one artifact cache: both always ask for the same LanguagePair.
func OrientPair(a, b, hub Language) LanguagePair {
	switch {
	case b == hub:
		return LanguagePair{A: a, B: b}
	case a == hub:
		return LanguagePair{A: b, B: a}
	case a <= b:
		return LanguagePair{A: a, B: b}
	default:
		return LanguagePair{A: b, B: a}
	}
}

// AllPairs enumerates every unordered pair of the given languages as
// canonically oriented LanguagePairs (see OrientPair), sorted. Duplicate
// languages are ignored.
func AllPairs(langs []Language, hub Language) []LanguagePair {
	uniq := dedupLanguages(langs)
	out := make([]LanguagePair, 0, len(uniq)*(len(uniq)-1)/2)
	for i, a := range uniq {
		for _, b := range uniq[i+1:] {
			out = append(out, OrientPair(a, b, hub))
		}
	}
	sortPairs(out)
	return out
}

// HubPairs enumerates the star of pairs connecting every language to the
// hub — the pivot-mode pair plan — canonically oriented (hub on the B
// side), sorted. The hub itself, and duplicates, are skipped.
func HubPairs(langs []Language, hub Language) []LanguagePair {
	uniq := dedupLanguages(langs)
	out := make([]LanguagePair, 0, len(uniq))
	for _, l := range uniq {
		if l == hub {
			continue
		}
		out = append(out, LanguagePair{A: l, B: hub})
	}
	sortPairs(out)
	return out
}

func dedupLanguages(langs []Language) []Language {
	seen := make(map[Language]bool, len(langs))
	out := make([]Language, 0, len(langs))
	for _, l := range langs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortPairs(pairs []LanguagePair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}
