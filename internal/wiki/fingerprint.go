package wiki

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Fingerprint returns a stable 64-bit digest of the corpus content: every
// article's title, entity type, categories, cross-language links, and
// infobox attribute–value pairs (including link targets), walked in a
// canonical order that does not depend on insertion order. Two corpora
// with the same articles produce the same fingerprint; any content change
// — an added article, a renamed attribute, an edited value — changes it.
//
// The persistence layer keys artifact snapshots by this fingerprint so a
// snapshot built from one corpus is rejected, not silently served, when
// loaded against another.
func (c *Corpus) Fingerprint() uint64 {
	h := fnv.New64a()
	var num [binary.MaxVarintLen64]byte
	writeInt := func(v int) {
		n := binary.PutUvarint(num[:], uint64(v))
		h.Write(num[:n])
	}
	// Length-prefix every string so field boundaries cannot alias
	// ("ab"+"c" vs "a"+"bc").
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	for _, lang := range c.langList { // already sorted
		arts := c.byLang[lang]
		titles := make([]string, len(arts))
		byTitle := make(map[string]*Article, len(arts))
		for i, a := range arts {
			titles[i] = a.Title
			byTitle[a.Title] = a
		}
		sort.Strings(titles)
		writeStr(string(lang))
		writeInt(len(titles))
		for _, t := range titles {
			a := byTitle[t]
			writeStr(a.Title)
			writeStr(a.Type)
			writeInt(len(a.Categories))
			for _, cat := range a.Categories {
				writeStr(cat)
			}
			links := a.SortedCrossLinks()
			writeInt(len(links))
			for _, l := range links {
				writeStr(string(l.Language))
				writeStr(l.Title)
			}
			if a.Infobox == nil {
				writeInt(0)
				continue
			}
			writeInt(1)
			writeStr(a.Infobox.Template)
			writeInt(len(a.Infobox.Attrs))
			for _, av := range a.Infobox.Attrs {
				writeStr(av.Name)
				writeStr(av.Text)
				writeInt(len(av.Links))
				for _, l := range av.Links {
					writeStr(l.Target)
					writeStr(l.Anchor)
				}
			}
		}
	}
	return h.Sum64()
}
