package wiki

import "testing"

func film(lang Language, title string, attrs ...AttributeValue) *Article {
	return &Article{
		Language: lang,
		Title:    title,
		Type:     "film",
		Infobox:  &Infobox{Template: "Infobox film", Attrs: attrs},
	}
}

func TestCorpusAddAndLookup(t *testing.T) {
	c := NewCorpus()
	a := film(English, "The Last Emperor", AttributeValue{Name: "directed by", Text: "Bernardo Bertolucci"})
	if err := c.Add(a); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := c.Add(film(English, "The Last Emperor")); err == nil {
		t.Fatal("expected duplicate error")
	}
	got, ok := c.Get(English, "The Last Emperor")
	if !ok || got != a {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Len() != 1 || c.LenLang(English) != 1 {
		t.Errorf("Len = %d, LenLang = %d", c.Len(), c.LenLang(English))
	}
	if types := c.Types(English); len(types) != 1 || types[0] != "film" {
		t.Errorf("Types = %v", types)
	}
	if got := c.OfType(English, "film"); len(got) != 1 {
		t.Errorf("OfType = %v", got)
	}
}

func TestCorpusAddValidates(t *testing.T) {
	c := NewCorpus()
	if err := c.Add(&Article{Language: "EN!", Title: "x"}); err == nil {
		t.Error("expected invalid-language error")
	}
	if err := c.Add(&Article{Language: English, Title: "  "}); err == nil {
		t.Error("expected empty-title error")
	}
	bad := film(English, "Dup", AttributeValue{Name: "a"}, AttributeValue{Name: "a"})
	if err := c.Add(bad); err == nil {
		t.Error("expected duplicate-attribute error")
	}
	self := film(English, "Self")
	self.SetCrossLink(English, "Self")
	if err := c.Add(self); err == nil {
		t.Error("expected self-cross-link error")
	}
}

func TestCorpusPairsBothDirections(t *testing.T) {
	c := NewCorpus()
	en1 := film(English, "A", AttributeValue{Name: "x"})
	pt1 := film(Portuguese, "A-pt", AttributeValue{Name: "y"})
	en1.SetCrossLink(Portuguese, "A-pt") // link recorded on the EN side only
	c.MustAdd(en1)
	c.MustAdd(pt1)

	en2 := film(English, "B", AttributeValue{Name: "x"})
	pt2 := film(Portuguese, "B-pt", AttributeValue{Name: "y"})
	pt2.SetCrossLink(English, "B") // link recorded on the PT side only
	c.MustAdd(en2)
	c.MustAdd(pt2)

	// Article without infobox must not pair.
	en3 := &Article{Language: English, Title: "C", Type: "film"}
	pt3 := film(Portuguese, "C-pt")
	en3.SetCrossLink(Portuguese, "C-pt")
	c.MustAdd(en3)
	c.MustAdd(pt3)

	pairs := c.Pairs(PtEn)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	for _, p := range pairs {
		if p.A.Language != Portuguese || p.B.Language != English {
			t.Errorf("pair orientation wrong: %s / %s", p.A.Key(), p.B.Key())
		}
		if !c.CrossLinked(p.A, p.B) || !c.CrossLinked(p.B, p.A) {
			t.Errorf("CrossLinked false for paired articles %s / %s", p.A.Key(), p.B.Key())
		}
	}
}

func TestCrossLinkedNegativeCases(t *testing.T) {
	c := NewCorpus()
	a := film(English, "A")
	b := film(Portuguese, "B")
	c.MustAdd(a)
	c.MustAdd(b)
	if c.CrossLinked(a, b) {
		t.Error("unlinked articles reported linked")
	}
	if c.CrossLinked(a, a) {
		t.Error("same article reported linked")
	}
	if c.CrossLinked(nil, b) {
		t.Error("nil article reported linked")
	}
}

func TestTypePairCount(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 3; i++ {
		en := film(English, "F"+string(rune('0'+i)), AttributeValue{Name: "x"})
		pt := &Article{Language: Portuguese, Title: "Fp" + string(rune('0'+i)), Type: "filme",
			Infobox: &Infobox{Template: "Infobox filme", Attrs: []AttributeValue{{Name: "y"}}}}
		en.SetCrossLink(Portuguese, pt.Title)
		c.MustAdd(en)
		c.MustAdd(pt)
	}
	counts := c.TypePairCount(LanguagePair{A: English, B: Portuguese})
	if counts[[2]string{"film", "filme"}] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCorpusStats(t *testing.T) {
	c := NewCorpus()
	en := film(English, "A", AttributeValue{Name: "x"})
	pt := film(Portuguese, "A-pt", AttributeValue{Name: "y"})
	en.SetCrossLink(Portuguese, "A-pt")
	c.MustAdd(en)
	c.MustAdd(pt)
	c.MustAdd(&Article{Language: English, Title: "NoBox"})
	s := c.Stats()
	if s.Articles[English] != 2 || s.Infoboxes[English] != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.CrossPairs["en-pt"] != 1 {
		t.Errorf("cross pairs = %v", s.CrossPairs)
	}
}

func TestInfoboxSetAndClone(t *testing.T) {
	ib := &Infobox{Template: "Infobox film"}
	ib.Set("starring", "John Lone", Link{Target: "John Lone", Anchor: "John Lone"})
	ib.Set("starring", "Joan Chen") // overwrite
	if av, _ := ib.Get("starring"); av.Text != "Joan Chen" || len(av.Links) != 0 {
		t.Errorf("Set overwrite failed: %+v", av)
	}
	ib.Set("language", "English")
	cp := ib.Clone()
	cp.Set("language", "Portuguese")
	if av, _ := ib.Get("language"); av.Text != "English" {
		t.Error("Clone is not a deep copy")
	}
}
