package wiki

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLinkString(t *testing.T) {
	cases := []struct {
		link Link
		want string
	}{
		{Link{Target: "X"}, "[[X]]"},
		{Link{Target: "X", Anchor: "X"}, "[[X]]"},
		{Link{Target: "X", Anchor: "the x"}, "[[X|the x]]"},
	}
	for _, c := range cases {
		if got := c.link.String(); got != c.want {
			t.Errorf("Link%v.String() = %q, want %q", c.link, got, c.want)
		}
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Language: Portuguese, Title: "O Rio"}
	if got := k.String(); got != "pt:O Rio" {
		t.Errorf("Key.String() = %q", got)
	}
}

func TestSortedCrossLinksOrder(t *testing.T) {
	a := &Article{Language: English, Title: "X"}
	a.SetCrossLink(Vietnamese, "Xv")
	a.SetCrossLink(Portuguese, "Xp")
	got := a.SortedCrossLinks()
	if len(got) != 2 || got[0].Language != Portuguese || got[1].Language != Vietnamese {
		t.Errorf("SortedCrossLinks = %v", got)
	}
}

func TestArticleCloneIndependence(t *testing.T) {
	orig := &Article{
		Language:   English,
		Title:      "X",
		Type:       "film",
		Categories: []string{"a"},
		Infobox: &Infobox{Template: "Infobox film", Attrs: []AttributeValue{
			{Name: "starring", Text: "A", Links: []Link{{Target: "A", Anchor: "A"}}},
		}},
		CrossLinks: map[Language]string{Portuguese: "Xp"},
	}
	cp := orig.Clone()
	cp.Categories[0] = "b"
	cp.Infobox.Attrs[0].Links[0].Target = "B"
	cp.CrossLinks[Portuguese] = "other"
	if orig.Categories[0] != "a" {
		t.Error("categories shared")
	}
	if orig.Infobox.Attrs[0].Links[0].Target != "A" {
		t.Error("links shared")
	}
	if orig.CrossLinks[Portuguese] != "Xp" {
		t.Error("cross links shared")
	}
}

func TestLanguagePairHelpers(t *testing.T) {
	if PtEn.String() != "pt-en" {
		t.Errorf("String = %q", PtEn.String())
	}
	if PtEn.Reverse() != (LanguagePair{A: English, B: Portuguese}) {
		t.Errorf("Reverse = %v", PtEn.Reverse())
	}
	if !PtEn.Contains(English) || PtEn.Contains(Vietnamese) {
		t.Error("Contains wrong")
	}
	if PtEn.Other(Portuguese) != English || PtEn.Other(Vietnamese) != "" {
		t.Error("Other wrong")
	}
}

func TestRenderValueWithDanglingAnchor(t *testing.T) {
	// A link whose anchor no longer appears in the text is appended
	// rather than lost, so the round-trip preserves it.
	a := &Article{
		Language: English, Title: "X", Type: "film",
		Infobox: &Infobox{Template: "Infobox film", Attrs: []AttributeValue{
			{Name: "starring", Text: "somebody else", Links: []Link{{Target: "Lost Link", Anchor: "Lost Link"}}},
		}},
	}
	text := RenderPage(a)
	if !strings.Contains(text, "[[Lost Link]]") {
		t.Errorf("dangling link dropped:\n%s", text)
	}
	back, err := ParsePage(English, "X", text)
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	av, _ := back.Infobox.Get("starring")
	if len(av.Links) != 1 || av.Links[0].Target != "Lost Link" {
		t.Errorf("round-trip links = %v", av.Links)
	}
}

// TestRenderParseRoundTripProperty: any article built from printable
// names/values survives render → parse with its schema intact.
func TestRenderParseRoundTripProperty(t *testing.T) {
	clean := func(s string, max int) string {
		var b strings.Builder
		for _, r := range s {
			if b.Len() >= max {
				break
			}
			// Keep letters, digits and spaces; markup characters would
			// legitimately change parsing.
			if r == ' ' || r == '-' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
		}
		return strings.TrimSpace(b.String())
	}
	prop := func(rawTitle string, rawNames [4]string, rawValues [4]string) bool {
		title := clean(rawTitle, 40)
		if title == "" {
			title = "Article"
		}
		a := &Article{Language: English, Title: title, Type: "film",
			Infobox: &Infobox{Template: "Infobox film"}}
		seen := map[string]bool{}
		for i := range rawNames {
			name := clean(rawNames[i], 24)
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			a.Infobox.Attrs = append(a.Infobox.Attrs, AttributeValue{
				Name: name, Text: clean(rawValues[i], 60),
			})
		}
		text := RenderPage(a)
		back, err := ParsePage(English, title, text)
		if err != nil {
			return false
		}
		if back.Infobox == nil {
			return len(a.Infobox.Attrs) == 0 && back.Infobox == nil || back.Infobox != nil
		}
		for _, av := range a.Infobox.Attrs {
			got, ok := back.Infobox.Get(av.Name)
			if !ok || got.Text != av.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
