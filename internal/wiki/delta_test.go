package wiki

import (
	"errors"
	"strings"
	"testing"
)

// deltaCorpus builds a small hand-written corpus for delta tests: three
// Portuguese articles (insertion order A, B, C) and two English ones.
func deltaCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	mk := func(lang Language, title, typ string, cross map[Language]string) *Article {
		a := &Article{Language: lang, Title: title, Type: typ, CrossLinks: cross}
		if typ != "" {
			a.Infobox = &Infobox{Template: "Infobox " + typ,
				Attrs: []AttributeValue{{Name: "nome", Text: title}}}
		}
		return a
	}
	c.MustAdd(mk(Portuguese, "Alfa", "filme", map[Language]string{English: "Alpha"}))
	c.MustAdd(mk(Portuguese, "Bravo", "filme", map[Language]string{English: "Bravo"}))
	c.MustAdd(mk(Portuguese, "Carlos", "livro", nil))
	c.MustAdd(mk(English, "Alpha", "film", nil))
	c.MustAdd(mk(English, "Bravo", "film", nil))
	return c
}

func ptTitles(c *Corpus) []string {
	var out []string
	for _, a := range c.Articles(Portuguese) {
		out = append(out, a.Title)
	}
	return out
}

func TestWithDeltaAddUpdateRemove(t *testing.T) {
	c := deltaCorpus(t)
	oldLen := c.Len()
	upd := c.Articles(Portuguese)[1].Clone() // Bravo
	upd.Infobox.Attrs[0].Text = "Bravo (editado)"
	add := &Article{Language: English, Title: "Delta", Type: "film",
		Infobox: &Infobox{Template: "Infobox film", Attrs: []AttributeValue{{Name: "name", Text: "Delta"}}}}

	out, eff, err := c.WithDelta(Delta{
		Upserts: []*Article{upd, add},
		Removes: []Key{{Language: Portuguese, Title: "Carlos"}},
	})
	if err != nil {
		t.Fatalf("WithDelta: %v", err)
	}
	if eff.Added != 1 || eff.Updated != 1 || eff.Removed != 1 {
		t.Errorf("effect = %+v, want 1/1/1", eff)
	}

	// The old corpus is untouched.
	if c.Len() != oldLen {
		t.Errorf("source corpus length changed: %d → %d", oldLen, c.Len())
	}
	if a, ok := c.Get(Portuguese, "Bravo"); !ok || a.Infobox.Attrs[0].Text != "Bravo" {
		t.Error("source corpus article was mutated")
	}
	if _, ok := c.Get(Portuguese, "Carlos"); !ok {
		t.Error("removed article vanished from the source corpus")
	}

	// The new corpus has the edits.
	if _, ok := out.Get(Portuguese, "Carlos"); ok {
		t.Error("removed article survives in the new corpus")
	}
	if a, ok := out.Get(Portuguese, "Bravo"); !ok || a.Infobox.Attrs[0].Text != "Bravo (editado)" {
		t.Error("updated article not replaced in the new corpus")
	}
	if _, ok := out.Get(English, "Delta"); !ok {
		t.Error("added article missing from the new corpus")
	}

	// Effect bookkeeping: touched languages sorted, touched types recorded.
	if langs := eff.Languages(); len(langs) != 2 || langs[0] != English || langs[1] != Portuguese {
		t.Errorf("Languages() = %v, want [en pt]", langs)
	}
	if !eff.Types[Portuguese]["filme"] || !eff.Types[Portuguese]["livro"] {
		t.Errorf("pt touched types = %v, want filme and livro", eff.Types[Portuguese])
	}
	if !eff.Types[English]["film"] {
		t.Errorf("en touched types = %v, want film", eff.Types[English])
	}
}

// TestWithDeltaPreservesOrder: replacements stay in place, additions
// append — Pairs() must enumerate surviving articles in the old order so
// artifacts of untouched types stay byte-identical.
func TestWithDeltaPreservesOrder(t *testing.T) {
	c := deltaCorpus(t)
	upd := c.Articles(Portuguese)[1].Clone()
	upd.Infobox.Attrs[0].Text = "editado"
	add := &Article{Language: Portuguese, Title: "Aaa", Type: "filme",
		Infobox: &Infobox{Template: "Infobox filme", Attrs: []AttributeValue{{Name: "nome", Text: "Aaa"}}}}

	out, _, err := c.WithDelta(Delta{Upserts: []*Article{add, upd}})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(ptTitles(out), ",")
	// "Aaa" sorts before every surviving title but must still append.
	if got != "Alfa,Bravo,Carlos,Aaa" {
		t.Errorf("pt order = %s, want Alfa,Bravo,Carlos,Aaa", got)
	}
}

// TestWithDeltaSharesUntouched: articles the delta does not touch are
// shared by pointer (they are immutable); edited ones are cloned so the
// caller's article cannot reach into the corpus.
func TestWithDeltaSharesUntouched(t *testing.T) {
	c := deltaCorpus(t)
	upd := c.Articles(Portuguese)[1].Clone()
	out, _, err := c.WithDelta(Delta{Upserts: []*Article{upd}})
	if err != nil {
		t.Fatal(err)
	}
	oldAlfa, _ := c.Get(Portuguese, "Alfa")
	newAlfa, _ := out.Get(Portuguese, "Alfa")
	if oldAlfa != newAlfa {
		t.Error("untouched article was copied instead of shared")
	}
	newBravo, _ := out.Get(Portuguese, "Bravo")
	if newBravo == upd {
		t.Error("upserted article not cloned into the corpus")
	}
	upd.Infobox.Attrs[0].Text = "mutated afterwards"
	if newBravo.Infobox.Attrs[0].Text == "mutated afterwards" {
		t.Error("later mutation of the caller's article reached the corpus")
	}
}

// TestWithDeltaUntypedEditTouchesLanguage: an edit to an article without
// an infobox still records the language as touched (titles and
// cross-links feed the pair dictionary) with an empty type set.
func TestWithDeltaUntypedEditTouchesLanguage(t *testing.T) {
	c := NewCorpus()
	c.MustAdd(&Article{Language: Portuguese, Title: "Solto"})
	upd := &Article{Language: Portuguese, Title: "Solto",
		CrossLinks: map[Language]string{English: "Loose"}}
	_, eff, err := c.WithDelta(Delta{Upserts: []*Article{upd}})
	if err != nil {
		t.Fatal(err)
	}
	tm, ok := eff.Types[Portuguese]
	if !ok {
		t.Fatal("touched language missing from effect")
	}
	if len(tm) != 0 {
		t.Errorf("untyped edit recorded types %v", tm)
	}
}

// TestWithDeltaTypeChangeTouchesBoth: replacing an article under a new
// entity type records both the old and the new type as touched.
func TestWithDeltaTypeChangeTouchesBoth(t *testing.T) {
	c := deltaCorpus(t)
	upd := &Article{Language: Portuguese, Title: "Alfa", Type: "livro",
		Infobox: &Infobox{Template: "Infobox livro", Attrs: []AttributeValue{{Name: "nome", Text: "Alfa"}}}}
	_, eff, err := c.WithDelta(Delta{Upserts: []*Article{upd}})
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Types[Portuguese]["filme"] || !eff.Types[Portuguese]["livro"] {
		t.Errorf("type change touched %v, want filme and livro", eff.Types[Portuguese])
	}
}

func TestWithDeltaErrors(t *testing.T) {
	c := deltaCorpus(t)
	upd := c.Articles(Portuguese)[0].Clone()
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"empty", Delta{}, "no edits"},
		{"nil upsert", Delta{Upserts: []*Article{nil}}, "nil upsert"},
		{"invalid article", Delta{Upserts: []*Article{{Language: Portuguese}}}, "empty title"},
		{"duplicate upsert", Delta{Upserts: []*Article{upd, upd.Clone()}}, "duplicate upsert"},
		{"duplicate remove", Delta{Removes: []Key{upd.Key(), upd.Key()}}, "duplicate remove"},
		{"upsert and remove", Delta{Upserts: []*Article{upd}, Removes: []Key{upd.Key()}}, "both upserted and removed"},
	}
	for _, tc := range cases {
		if _, _, err := c.WithDelta(tc.d); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	_, _, err := c.WithDelta(Delta{Removes: []Key{{Language: Portuguese, Title: "Nunca"}}})
	if !errors.Is(err, ErrNoSuchArticle) {
		t.Errorf("remove missing: err = %v, want ErrNoSuchArticle", err)
	}
	// A rejected delta leaves the corpus untouched.
	if c.Len() != 5 {
		t.Errorf("corpus changed by failed deltas: len = %d", c.Len())
	}
}
