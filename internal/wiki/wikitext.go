package wiki

import (
	"fmt"
	"strings"
)

// ParsePage parses the wikitext of a page into an Article: it extracts the
// first infobox template, the page's categories, and its interlanguage
// links. The entity type is derived from the infobox template name
// ("Infobox film" → "film"); if the page has no infobox the type is left
// empty and Infobox is nil.
//
// The parser is tolerant: malformed markup degrades to plain text rather
// than failing, and only structurally impossible input (unbalanced
// template braces at the very start of the infobox) yields an error.
func ParsePage(lang Language, title, wikitext string) (*Article, error) {
	a := &Article{Language: lang, Title: title}
	start, end, ok, err := findInfobox(wikitext)
	if err != nil {
		return nil, fmt.Errorf("page %s:%s: %w", lang, title, err)
	}
	if ok {
		ib, err := parseInfoboxTemplate(wikitext[start:end])
		if err != nil {
			return nil, fmt.Errorf("page %s:%s: %w", lang, title, err)
		}
		a.Infobox = ib
		a.Type = TemplateType(ib.Template)
	}
	for _, l := range topLevelLinks(wikitext) {
		if idx := strings.Index(l.Target, ":"); idx > 0 {
			prefix := l.Target[:idx]
			rest := l.Target[idx+1:]
			switch {
			case strings.EqualFold(prefix, "Category") || strings.EqualFold(prefix, "Categoria") || strings.EqualFold(prefix, "Thể loại"):
				if rest != "" {
					a.Categories = append(a.Categories, rest)
				}
			case Language(prefix).Valid() && rest != "":
				a.SetCrossLink(Language(prefix), rest)
			}
		}
	}
	return a, nil
}

// TemplateType derives the entity type from an infobox template name:
// "Infobox film" → "film". The comparison with the "Infobox" prefix is
// case-insensitive; a bare "Infobox" or an unrelated template name is
// returned lowercased as-is.
func TemplateType(template string) string {
	t := strings.TrimSpace(template)
	lower := strings.ToLower(t)
	if strings.HasPrefix(lower, "infobox") {
		t = strings.TrimSpace(t[len("infobox"):])
		lower = strings.ToLower(t)
	}
	return strings.TrimSpace(lower)
}

// findInfobox locates the first {{Infobox ...}} template in the wikitext,
// returning the byte offsets of the full balanced template (including the
// outer braces). An infobox opener whose braces never balance is the one
// malformation reported as an error rather than tolerated, because it
// swallows the rest of the page.
func findInfobox(s string) (start, end int, ok bool, err error) {
	for i := 0; i+2 <= len(s); i++ {
		if s[i] != '{' || i+1 >= len(s) || s[i+1] != '{' {
			continue
		}
		inner := s[i+2:]
		if !hasFoldPrefix(strings.TrimLeft(inner, " \t\n"), "infobox") {
			continue
		}
		if e, balanced := matchBraces(s, i); balanced {
			return i, e, true, nil
		}
		return 0, 0, false, fmt.Errorf("unbalanced infobox template at byte %d", i)
	}
	return 0, 0, false, nil
}

// hasFoldPrefix reports whether s starts with prefix, ASCII case-insensitively.
func hasFoldPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// matchBraces finds the end (exclusive) of the {{...}} block opening at
// index i, honoring nested {{ }} pairs.
func matchBraces(s string, i int) (end int, ok bool) {
	depth := 0
	for j := i; j < len(s); j++ {
		switch {
		case j+1 < len(s) && s[j] == '{' && s[j+1] == '{':
			depth++
			j++
		case j+1 < len(s) && s[j] == '}' && s[j+1] == '}':
			depth--
			j++
			if depth == 0 {
				return j + 1, true
			}
		}
	}
	return 0, false
}

// parseInfoboxTemplate parses the body of a balanced {{Infobox ...}}
// template into an Infobox.
func parseInfoboxTemplate(tpl string) (*Infobox, error) {
	if !strings.HasPrefix(tpl, "{{") || !strings.HasSuffix(tpl, "}}") {
		return nil, fmt.Errorf("infobox template not brace-delimited")
	}
	body := tpl[2 : len(tpl)-2]
	parts := splitTopLevel(body, '|')
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty infobox template")
	}
	ib := &Infobox{Template: strings.TrimSpace(parts[0])}
	for _, part := range parts[1:] {
		eq := topLevelIndex(part, '=')
		if eq < 0 {
			// A positional parameter; infoboxes use named fields only, so
			// tolerate and skip.
			continue
		}
		name := strings.TrimSpace(part[:eq])
		raw := strings.TrimSpace(part[eq+1:])
		if name == "" {
			continue
		}
		if ib.Has(name) {
			// Last occurrence wins, matching MediaWiki behaviour.
			ib.Set(name, StripMarkup(raw), ExtractLinks(raw)...)
			continue
		}
		ib.Attrs = append(ib.Attrs, AttributeValue{
			Name:  name,
			Text:  StripMarkup(raw),
			Links: ExtractLinks(raw),
		})
	}
	return ib, nil
}

// splitTopLevel splits s on sep occurrences that are not inside [[ ]] or
// {{ }} pairs.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depthBrace, depthBracket := 0, 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch {
		case i+1 < len(s) && s[i] == '{' && s[i+1] == '{':
			depthBrace++
			i++
		case i+1 < len(s) && s[i] == '}' && s[i+1] == '}':
			if depthBrace > 0 {
				depthBrace--
			}
			i++
		case i+1 < len(s) && s[i] == '[' && s[i+1] == '[':
			depthBracket++
			i++
		case i+1 < len(s) && s[i] == ']' && s[i+1] == ']':
			if depthBracket > 0 {
				depthBracket--
			}
			i++
		case s[i] == sep && depthBrace == 0 && depthBracket == 0:
			parts = append(parts, s[last:i])
			last = i + 1
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// topLevelIndex returns the index of the first sep not nested inside
// [[ ]] or {{ }}, or -1.
func topLevelIndex(s string, sep byte) int {
	depthBrace, depthBracket := 0, 0
	for i := 0; i < len(s); i++ {
		switch {
		case i+1 < len(s) && s[i] == '{' && s[i+1] == '{':
			depthBrace++
			i++
		case i+1 < len(s) && s[i] == '}' && s[i+1] == '}':
			if depthBrace > 0 {
				depthBrace--
			}
			i++
		case i+1 < len(s) && s[i] == '[' && s[i+1] == '[':
			depthBracket++
			i++
		case i+1 < len(s) && s[i] == ']' && s[i+1] == ']':
			if depthBracket > 0 {
				depthBracket--
			}
			i++
		case s[i] == sep && depthBrace == 0 && depthBracket == 0:
			return i
		}
	}
	return -1
}

// ExtractLinks returns the [[Target]] / [[Target|anchor]] links in a value.
func ExtractLinks(s string) []Link {
	var links []Link
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '[' || s[i+1] != '[' {
			continue
		}
		end := strings.Index(s[i+2:], "]]")
		if end < 0 {
			break
		}
		inner := s[i+2 : i+2+end]
		target, anchor := inner, inner
		if pipe := strings.IndexByte(inner, '|'); pipe >= 0 {
			target, anchor = inner[:pipe], inner[pipe+1:]
		}
		target = strings.TrimSpace(target)
		if target != "" && !strings.Contains(target, ":") {
			links = append(links, Link{Target: target, Anchor: strings.TrimSpace(anchor)})
		}
		i += 2 + end + 1 // continue after "]]"
	}
	return links
}

// topLevelLinks extracts every [[...]] link in the text, including
// namespace-prefixed ones (categories, interlanguage links).
func topLevelLinks(s string) []Link {
	var links []Link
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '[' || s[i+1] != '[' {
			continue
		}
		end := strings.Index(s[i+2:], "]]")
		if end < 0 {
			break
		}
		inner := s[i+2 : i+2+end]
		target, anchor := inner, inner
		if pipe := strings.IndexByte(inner, '|'); pipe >= 0 {
			target, anchor = inner[:pipe], inner[pipe+1:]
		}
		target = strings.TrimSpace(target)
		if target != "" {
			links = append(links, Link{Target: target, Anchor: strings.TrimSpace(anchor)})
		}
		i += 2 + end + 1
	}
	return links
}

// StripMarkup reduces wikitext value markup to plain text: links become
// their anchor text, bold/italic quotes are removed, nested templates are
// flattened to their space-joined arguments, and <ref>…</ref> spans and
// HTML comments are dropped.
func StripMarkup(s string) string {
	s = dropSpans(s, "<ref", "</ref>")
	s = dropSpans(s, "<!--", "-->")
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case i+1 < len(s) && s[i] == '[' && s[i+1] == '[':
			end := strings.Index(s[i+2:], "]]")
			if end < 0 {
				b.WriteString(s[i:])
				return cleanSpaces(b.String())
			}
			inner := s[i+2 : i+2+end]
			if pipe := strings.IndexByte(inner, '|'); pipe >= 0 {
				inner = inner[pipe+1:]
			}
			if idx := strings.Index(inner, ":"); idx > 0 && Language(inner[:idx]).Valid() {
				// Interlanguage link in a value position; skip it.
			} else {
				b.WriteString(inner)
			}
			i += 2 + end + 1
		case i+1 < len(s) && s[i] == '{' && s[i+1] == '{':
			end, ok := matchBraces(s, i)
			if !ok {
				b.WriteString(s[i:])
				return cleanSpaces(b.String())
			}
			args := splitTopLevel(s[i+2:end-2], '|')
			for j, arg := range args {
				if j == 0 {
					continue // template name
				}
				arg = strings.TrimSpace(arg)
				if eq := strings.IndexByte(arg, '='); eq >= 0 {
					arg = strings.TrimSpace(arg[eq+1:])
				}
				if arg != "" {
					if b.Len() > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(arg)
				}
			}
			i = end - 1
		case s[i] == '\'':
			// Collapse '' and ''' emphasis markers.
			j := i
			for j < len(s) && s[j] == '\'' {
				j++
			}
			if j-i == 1 {
				b.WriteByte('\'')
			}
			i = j - 1
		case s[i] == '<':
			if end := strings.IndexByte(s[i:], '>'); end >= 0 {
				tag := s[i : i+end+1]
				if strings.EqualFold(tag, "<br>") || strings.EqualFold(tag, "<br/>") || strings.EqualFold(tag, "<br />") {
					b.WriteByte(' ')
					i += end
					continue
				}
			}
			b.WriteByte(s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return cleanSpaces(b.String())
}

// dropSpans removes every span starting with open (case-insensitive) and
// ending with close, inclusive.
func dropSpans(s, open, close string) string {
	lower := strings.ToLower(s)
	lowOpen, lowClose := strings.ToLower(open), strings.ToLower(close)
	var b strings.Builder
	for {
		i := strings.Index(lower, lowOpen)
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		j := strings.Index(lower[i:], lowClose)
		if j < 0 {
			b.WriteString(s[:i])
			return b.String()
		}
		b.WriteString(s[:i])
		cut := i + j + len(close)
		s = s[cut:]
		lower = lower[cut:]
	}
}

// cleanSpaces collapses runs of whitespace into single spaces and trims.
func cleanSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// RenderPage renders an article back to wikitext: the infobox template,
// a one-line body, category links and interlanguage links. ParsePage on
// the output reconstructs the article (round-trip property, tested).
func RenderPage(a *Article) string {
	var b strings.Builder
	if a.Infobox != nil {
		b.WriteString("{{")
		b.WriteString(a.Infobox.Template)
		b.WriteString("\n")
		for _, av := range a.Infobox.Attrs {
			b.WriteString("| ")
			b.WriteString(av.Name)
			b.WriteString(" = ")
			b.WriteString(renderValue(av))
			b.WriteString("\n")
		}
		b.WriteString("}}\n\n")
	}
	b.WriteString("'''")
	b.WriteString(a.Title)
	b.WriteString("''' is an article in the ")
	b.WriteString(string(a.Language))
	b.WriteString(" edition.\n\n")
	for _, cat := range a.Categories {
		b.WriteString("[[Category:")
		b.WriteString(cat)
		b.WriteString("]]\n")
	}
	for _, cl := range a.SortedCrossLinks() {
		b.WriteString("[[")
		b.WriteString(string(cl.Language))
		b.WriteString(":")
		b.WriteString(cl.Title)
		b.WriteString("]]\n")
	}
	return b.String()
}

// renderValue writes an attribute value back to wikitext, re-linking the
// portions of the text that correspond to recorded links.
func renderValue(av AttributeValue) string {
	text := av.Text
	if len(av.Links) == 0 {
		return text
	}
	// Replace each link's anchor occurrence (first match) with the link
	// markup. Anchors that no longer appear in the text are appended.
	var b strings.Builder
	remaining := text
	var trailing []Link
	for _, l := range av.Links {
		anchor := l.Anchor
		if anchor == "" {
			anchor = l.Target
		}
		idx := strings.Index(remaining, anchor)
		if idx < 0 {
			trailing = append(trailing, l)
			continue
		}
		b.WriteString(remaining[:idx])
		b.WriteString(l.String())
		remaining = remaining[idx+len(anchor):]
	}
	b.WriteString(remaining)
	for _, l := range trailing {
		b.WriteByte(' ')
		b.WriteString(l.String())
	}
	return b.String()
}
