package wiki

import (
	"fmt"
	"sort"
)

// Corpus is a collection of articles across language editions with the
// indices the matching pipeline needs: lookup by title, grouping by entity
// type, and resolution of cross-language links into article pairs.
type Corpus struct {
	byKey    map[Key]*Article
	byLang   map[Language][]*Article
	byType   map[Language]map[string][]*Article
	langList []Language
	// incoming indexes reverse cross-language links: for an article key
	// K, incoming[K] lists articles that declare a cross-link to K.
	incoming map[Key][]Key
}

// NewCorpus returns an empty corpus ready for use.
func NewCorpus() *Corpus {
	return &Corpus{
		byKey:    make(map[Key]*Article),
		byLang:   make(map[Language][]*Article),
		byType:   make(map[Language]map[string][]*Article),
		incoming: make(map[Key][]Key),
	}
}

// Add inserts an article into the corpus. It returns an error if the
// article fails validation or an article with the same key already exists.
func (c *Corpus) Add(a *Article) error {
	if err := a.Validate(); err != nil {
		return err
	}
	k := a.Key()
	if _, dup := c.byKey[k]; dup {
		return fmt.Errorf("duplicate article %s", k)
	}
	c.byKey[k] = a
	if _, seen := c.byLang[a.Language]; !seen {
		c.langList = append(c.langList, a.Language)
		sort.Slice(c.langList, func(i, j int) bool { return c.langList[i] < c.langList[j] })
	}
	c.byLang[a.Language] = append(c.byLang[a.Language], a)
	if a.Type != "" {
		tm := c.byType[a.Language]
		if tm == nil {
			tm = make(map[string][]*Article)
			c.byType[a.Language] = tm
		}
		tm[a.Type] = append(tm[a.Type], a)
	}
	for l, t := range a.CrossLinks {
		target := Key{Language: l, Title: t}
		c.incoming[target] = append(c.incoming[target], k)
	}
	return nil
}

// ReverseCrossLink finds the title of an article in `from` that declares
// a cross-language link to (lang, title). It complements Resolve for
// links recorded only on the other side.
func (c *Corpus) ReverseCrossLink(lang Language, title string, from Language) (string, bool) {
	for _, k := range c.incoming[Key{Language: lang, Title: title}] {
		if k.Language == from {
			return k.Title, true
		}
	}
	return "", false
}

// MustAdd inserts an article and panics on error; intended for generators
// and tests where the input is constructed and known valid.
func (c *Corpus) MustAdd(a *Article) {
	if err := c.Add(a); err != nil {
		panic(err)
	}
}

// Get returns the article with the given language and title.
func (c *Corpus) Get(lang Language, title string) (*Article, bool) {
	a, ok := c.byKey[Key{Language: lang, Title: title}]
	return a, ok
}

// Languages returns the language editions present, sorted.
func (c *Corpus) Languages() []Language {
	return append([]Language(nil), c.langList...)
}

// Articles returns all articles in a language, in insertion order.
func (c *Corpus) Articles(lang Language) []*Article {
	return c.byLang[lang]
}

// Len returns the total number of articles across all languages.
func (c *Corpus) Len() int { return len(c.byKey) }

// LenLang returns the number of articles in one language.
func (c *Corpus) LenLang(lang Language) int { return len(c.byLang[lang]) }

// Types returns the entity types present in a language, sorted.
func (c *Corpus) Types(lang Language) []string {
	tm := c.byType[lang]
	types := make([]string, 0, len(tm))
	for t := range tm {
		types = append(types, t)
	}
	sort.Strings(types)
	return types
}

// OfType returns the articles of a given entity type in a language.
func (c *Corpus) OfType(lang Language, typ string) []*Article {
	return c.byType[lang][typ]
}

// Resolve follows an article's cross-language link into lang and returns
// the landing article, if both the link and the article exist.
func (c *Corpus) Resolve(a *Article, lang Language) (*Article, bool) {
	title, ok := a.CrossLink(lang)
	if !ok {
		return nil, false
	}
	return c.Get(lang, title)
}

// ArticlePair is a pair of articles in two languages connected by a
// cross-language link — the unit from which dual-language infobox schemas
// (Section 2) are formed.
type ArticlePair struct {
	A, B *Article
}

// Pairs returns every article pair (a, b) with a in pair.A and b in pair.B
// such that a cross-language link connects them (in either direction) and
// both articles carry an infobox. The result is in insertion order of the
// pair.A side.
func (c *Corpus) Pairs(pair LanguagePair) []ArticlePair {
	var out []ArticlePair
	seen := make(map[Key]bool)
	for _, a := range c.byLang[pair.A] {
		if a.Infobox == nil {
			continue
		}
		b, ok := c.Resolve(a, pair.B)
		if !ok || b.Infobox == nil {
			continue
		}
		out = append(out, ArticlePair{A: a, B: b})
		seen[a.Key()] = true
	}
	// Also honor links recorded only on the pair.B side.
	for _, b := range c.byLang[pair.B] {
		if b.Infobox == nil {
			continue
		}
		a, ok := c.Resolve(b, pair.A)
		if !ok || a.Infobox == nil || seen[a.Key()] {
			continue
		}
		out = append(out, ArticlePair{A: a, B: b})
		seen[a.Key()] = true
	}
	return out
}

// CrossLinked reports whether articles a and b (in different languages)
// are connected by a cross-language link in either direction.
func (c *Corpus) CrossLinked(a, b *Article) bool {
	if a == nil || b == nil || a.Language == b.Language {
		return false
	}
	if t, ok := a.CrossLink(b.Language); ok && t == b.Title {
		return true
	}
	if t, ok := b.CrossLink(a.Language); ok && t == a.Title {
		return true
	}
	return false
}

// TypePairCount tallies, for every (type in pair.A, type in pair.B)
// combination, how many cross-linked infobox pairs connect them. This is
// the voting table used for entity-type matching across languages
// (Section 3.1).
func (c *Corpus) TypePairCount(pair LanguagePair) map[[2]string]int {
	counts := make(map[[2]string]int)
	for _, p := range c.Pairs(pair) {
		if p.A.Type == "" || p.B.Type == "" {
			continue
		}
		counts[[2]string{p.A.Type, p.B.Type}]++
	}
	return counts
}

// Stats summarizes a corpus for reporting. Languages lists the
// editions present, sorted — explicit rather than implied by map keys,
// so wire consumers of /v1/corpus see the data-driven language set
// directly.
type Stats struct {
	Languages  []Language
	Articles   map[Language]int
	Infoboxes  map[Language]int
	Types      map[Language]int
	CrossPairs map[string]int // language pair ("pt-en") → linked infobox pairs
}

// Stats computes summary statistics over the corpus.
func (c *Corpus) Stats() Stats {
	s := Stats{
		Languages:  c.Languages(),
		Articles:   make(map[Language]int),
		Infoboxes:  make(map[Language]int),
		Types:      make(map[Language]int),
		CrossPairs: make(map[string]int),
	}
	for _, lang := range c.langList {
		s.Articles[lang] = len(c.byLang[lang])
		n := 0
		for _, a := range c.byLang[lang] {
			if a.Infobox != nil {
				n++
			}
		}
		s.Infoboxes[lang] = n
		s.Types[lang] = len(c.byType[lang])
	}
	for i, la := range c.langList {
		for _, lb := range c.langList[i+1:] {
			p := LanguagePair{A: la, B: lb}
			s.CrossPairs[p.String()] = len(c.Pairs(p))
		}
	}
	return s
}
