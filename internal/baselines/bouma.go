package baselines

import (
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/text"
	"repro/internal/wiki"
)

// BoumaConfig tunes the Bouma et al. aligner.
type BoumaConfig struct {
	// MinMatchFraction is the fraction of co-present dual infoboxes in
	// which two attributes' values must match for the pair to be
	// accepted.
	MinMatchFraction float64
	// MinVotes is the minimum absolute number of matching value pairs.
	MinVotes int
}

// DefaultBoumaConfig mirrors the conservative, precision-first behaviour
// reported in the paper (near-perfect precision, lower recall).
func DefaultBoumaConfig() BoumaConfig {
	return BoumaConfig{MinMatchFraction: 0.5, MinVotes: 2}
}

// Bouma implements the cross-lingual template aligner of Bouma, Duarte
// and Islam (CLIAWS3 2009) as described in Sections 4.1 and 6: two
// attributes align when their values match across the cross-linked
// infobox pair, where values match if they are identical or if their
// landing articles are connected by a cross-language link.
func Bouma(c *wiki.Corpus, pair wiki.LanguagePair, typeA, typeB string, cfg BoumaConfig) eval.Correspondences {
	votes := make(map[[2]string]int)
	copresent := make(map[[2]string]int)
	for _, p := range c.Pairs(pair) {
		if p.A.Type != typeA || p.B.Type != typeB {
			continue
		}
		for _, avA := range p.A.Infobox.Attrs {
			nameA := text.Normalize(avA.Name)
			if nameA == "" {
				continue
			}
			for _, avB := range p.B.Infobox.Attrs {
				nameB := text.Normalize(avB.Name)
				if nameB == "" {
					continue
				}
				key := [2]string{nameA, nameB}
				copresent[key]++
				if valuesMatch(c, pair, avA, avB) {
					votes[key]++
				}
			}
		}
	}
	out := make(eval.Correspondences)
	for key, v := range votes {
		if v < cfg.MinVotes {
			continue
		}
		if float64(v) >= cfg.MinMatchFraction*float64(copresent[key]) {
			out.Add(key[0], key[1])
		}
	}
	return out
}

// valuesMatch applies Bouma's value identity test: equal after
// normalization, or sharing a pair of link targets connected by a
// cross-language link (compared through their canonical keys).
func valuesMatch(c *wiki.Corpus, pair wiki.LanguagePair, a, b wiki.AttributeValue) bool {
	if ta, tb := text.Normalize(a.Text), text.Normalize(b.Text); ta != "" && ta == tb {
		return true
	}
	if len(a.Links) == 0 || len(b.Links) == 0 {
		return false
	}
	keysA := make(map[string]bool, len(a.Links))
	for _, l := range a.Links {
		keysA[sim.CanonicalLinkKey(c, pair.A, l.Target)] = true
	}
	for _, l := range b.Links {
		if keysA[sim.CanonicalLinkKey(c, pair.B, l.Target)] {
			return true
		}
	}
	return false
}
