package baselines

import (
	"sort"

	"repro/internal/eval"
	"repro/internal/sim"
)

// HolisticConfig tunes the correlation-only matcher.
type HolisticConfig struct {
	// MinCorrelation is the minimum X2 score a candidate needs.
	MinCorrelation float64
	// MinSupport is the minimum dual-infobox co-occurrence count.
	MinSupport int
}

// DefaultHolisticConfig mirrors the conservative settings of the
// holistic web-form matchers the paper discusses.
func DefaultHolisticConfig() HolisticConfig {
	return HolisticConfig{MinCorrelation: 1.2, MinSupport: 2}
}

// Holistic implements a correlation-only matcher in the style of the
// holistic web-form schema matching the paper's IntegrateMatches builds
// on (He & Chang TODS 2006; Su, Wang & Lochovsky EDBT 2006): candidate
// cross-language pairs are ordered by the X2 co-occurrence correlation
// and grouped greedily, with same-language co-occurrence acting as the
// negative-correlation veto. It uses no value or link evidence at all,
// demonstrating the paper's Section 3.3 observation that attribute
// correlation alone does not reach high F-measure.
func Holistic(td *sim.TypeData, cfg HolisticConfig) eval.Correspondences {
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for _, p := range td.CrossPairs() {
		if td.CoOccurDual(p[0], p[1]) < cfg.MinSupport {
			continue
		}
		if s := td.X2(p[0], p[1]); s >= cfg.MinCorrelation {
			cands = append(cands, cand{i: p[0], j: p[1], score: s})
		}
	}
	sort.SliceStable(cands, func(x, y int) bool {
		if cands[x].score != cands[y].score {
			return cands[x].score > cands[y].score
		}
		if cands[x].i != cands[y].i {
			return cands[x].i < cands[y].i
		}
		return cands[x].j < cands[y].j
	})
	// Greedy grouping: an attribute joins at most one group; an attribute
	// may not join a group containing a same-language attribute it
	// co-occurs with (the negative-correlation veto).
	group := make(map[int]int) // attr index → group id
	members := make(map[int][]int)
	next := 0
	vetoed := func(x, gid int) bool {
		for _, m := range members[gid] {
			if td.Attrs[m].Lang == td.Attrs[x].Lang && td.CoOccurLang(m, x) > 0 {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		gi, okI := group[c.i]
		gj, okJ := group[c.j]
		switch {
		case !okI && !okJ:
			group[c.i], group[c.j] = next, next
			members[next] = []int{c.i, c.j}
			next++
		case okI && !okJ:
			if !vetoed(c.j, gi) {
				group[c.j] = gi
				members[gi] = append(members[gi], c.j)
			}
		case !okI && okJ:
			if !vetoed(c.i, gj) {
				group[c.i] = gj
				members[gj] = append(members[gj], c.i)
			}
		}
	}
	out := make(eval.Correspondences)
	for _, ms := range members {
		for _, x := range ms {
			if td.Attrs[x].Lang != td.Pair.A {
				continue
			}
			for _, y := range ms {
				if td.Attrs[y].Lang == td.Pair.B {
					out.Add(td.Attrs[x].Name, td.Attrs[y].Name)
				}
			}
		}
	}
	return out
}
