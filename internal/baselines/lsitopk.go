// Package baselines implements the three systems WikiMatch is compared
// against in Section 4.1: plain LSI with top-k selection (Littman et al.'s
// cross-language LSI applied to schema attributes), Bouma et al.'s
// value/cross-link template aligner, and a COMA++-style matcher framework
// with name and instance matchers and machine-translation variants.
package baselines

import (
	"sort"

	"repro/internal/eval"
	"repro/internal/lsi"
	"repro/internal/sim"
)

// LSITopK aligns attributes with LSI alone: for each source-language
// attribute, the k highest-scoring target-language attributes are taken
// as its correspondences. The paper evaluates k ∈ {1, 3, 5, 10}
// (Figure 6), with top-1 giving the best F-measure (Table 2's LSI
// column).
func LSITopK(td *sim.TypeData, rank, k int) eval.Correspondences {
	return LSITopKModel(lsi.Build(td.Duals, rank, td.Attrs...), td, k)
}

// LSITopKModel is LSITopK over an already-built model, so callers
// sweeping k (Figure 6) can share one decomposition.
func LSITopKModel(model *lsi.Model, td *sim.TypeData, k int) eval.Correspondences {
	out := make(eval.Correspondences)
	type scored struct {
		name  string
		score float64
	}
	for i, a := range td.Attrs {
		if a.Lang != td.Pair.A {
			continue
		}
		var cands []scored
		for j, b := range td.Attrs {
			if b.Lang != td.Pair.B {
				continue
			}
			s := model.ScoreAttrs(a, b)
			if s > 0 {
				cands = append(cands, scored{name: b.Name, score: s})
			}
			_ = j
		}
		sort.SliceStable(cands, func(x, y int) bool {
			if cands[x].score != cands[y].score {
				return cands[x].score > cands[y].score
			}
			return cands[x].name < cands[y].name
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		for _, cd := range cands {
			out.Add(a.Name, cd.name)
		}
		_ = i
	}
	return out
}

// LSIRanking returns every cross-language pair scored by LSI, for the
// MAP analysis of Table 7.
func LSIRanking(td *sim.TypeData, rank int) []eval.RankedPair {
	return LSIRankingModel(lsi.Build(td.Duals, rank, td.Attrs...), td)
}

// LSIRankingModel is LSIRanking over an already-built model.
func LSIRankingModel(model *lsi.Model, td *sim.TypeData) []eval.RankedPair {
	var out []eval.RankedPair
	for _, p := range td.CrossPairs() {
		a, b := td.Attrs[p[0]], td.Attrs[p[1]]
		out = append(out, eval.RankedPair{A: a.Name, B: b.Name, Score: model.ScoreAttrs(a, b)})
	}
	return out
}
