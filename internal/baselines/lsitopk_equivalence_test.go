package baselines

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dict"
	"repro/internal/lsi"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// TestLSIBaselinesUnchangedByRandomizedSVD pins that the sparse SVD swap
// inside lsi.Build leaves the LSI baselines' outputs unchanged: on the
// full-size corpus's largest type (which takes the sparse path), the
// top-k correspondence sets for every evaluated k are identical to the
// exact dense decomposition, and the MAP ranking scores agree to well
// below any reported digit with the same positivity.
func TestLSIBaselinesUnchangedByRandomizedSVD(t *testing.T) {
	c, _, err := synth.Generate(synth.DefaultConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	d := dict.Build(c, wiki.Portuguese, wiki.English)
	td := sim.BuildTypeData(c, wiki.PtEn, "filme", "film", d)
	fast := lsi.Build(td.Duals, lsi.DefaultRank, td.Attrs...)
	exact := lsi.BuildWith(td.Duals, lsi.DefaultRank, lsi.Options{ExactSVD: true}, td.Attrs...)

	for _, k := range []int{1, 3, 5, 10} {
		got := LSITopKModel(fast, td, k)
		want := LSITopKModel(exact, td, k)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: top-k correspondences differ:\nfast:  %v\nexact: %v", k, got, want)
		}
	}

	gotRank := LSIRankingModel(fast, td)
	wantRank := LSIRankingModel(exact, td)
	if len(gotRank) != len(wantRank) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(gotRank), len(wantRank))
	}
	for i := range gotRank {
		g, w := gotRank[i], wantRank[i]
		if g.A != w.A || g.B != w.B {
			t.Fatalf("ranking pair %d differs: %v vs %v", i, g, w)
		}
		if math.Abs(g.Score-w.Score) > 1e-8 {
			t.Errorf("pair (%s,%s): score %v vs %v", g.A, g.B, g.Score, w.Score)
		}
		if (g.Score > 0) != (w.Score > 0) {
			t.Errorf("pair (%s,%s): positivity flipped: %v vs %v", g.A, g.B, g.Score, w.Score)
		}
	}
}
