package baselines

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/text"
)

// COMAConfig selects a COMA++-style matcher configuration (Appendix C,
// Figure 7): a name matcher (string similarity over attribute labels), an
// instance matcher (cosine over value vectors), their combination, and
// translation variants — "+G" translates labels through the simulated
// machine-translation system, "+D" translates instances through the
// cross-language-link dictionary.
type COMAConfig struct {
	Name               bool
	Instance           bool
	TranslateNames     bool // N+G: label machine translation
	TranslateInstances bool // I+D: value dictionary translation
	// Threshold is COMA's selection threshold δ (the paper uses 0.01).
	Threshold float64
	// RelTolerance keeps, per source attribute, candidates scoring within
	// this relative distance of the row maximum (0 = strict argmax, the
	// Multiple(0,0,0) candidate selection of Appendix C).
	RelTolerance float64
}

// Label returns the conventional name of the configuration ("N", "I",
// "NI", "N+G", "I+D", "NG+ID").
func (c COMAConfig) Label() string {
	switch {
	case c.Name && c.Instance && c.TranslateNames && c.TranslateInstances:
		return "NG+ID"
	case c.Name && c.Instance && !c.TranslateNames && !c.TranslateInstances:
		return "NI"
	case c.Name && c.TranslateNames:
		return "N+G"
	case c.Name:
		return "N"
	case c.Instance && c.TranslateInstances:
		return "I+D"
	case c.Instance:
		return "I"
	}
	return fmt.Sprintf("COMA(%+v)", struct{ N, I, TN, TI bool }{c.Name, c.Instance, c.TranslateNames, c.TranslateInstances})
}

// COMAConfigs enumerates the configurations evaluated in Figure 7.
func COMAConfigs(threshold float64) []COMAConfig {
	return []COMAConfig{
		{Name: true, Threshold: threshold},
		{Instance: true, Threshold: threshold},
		{Name: true, Instance: true, Threshold: threshold},
		{Name: true, TranslateNames: true, Threshold: threshold},
		{Instance: true, TranslateInstances: true, Threshold: threshold},
		{Name: true, Instance: true, TranslateNames: true, TranslateInstances: true, Threshold: threshold},
	}
}

// COMA runs one configuration over a type's attributes and returns the
// selected correspondences. lt is the simulated label translator (used
// only by TranslateNames); it may be nil, in which case labels are
// compared untranslated.
func COMA(td *sim.TypeData, lt *dict.LabelTranslator, cfg COMAConfig) eval.Correspondences {
	scores := COMAScores(td, lt, cfg)
	out := make(eval.Correspondences)
	// Per-source-attribute Multiple(…) selection: keep candidates within
	// RelTolerance of the row maximum and above the threshold.
	rowMax := make(map[string]float64)
	for _, rp := range scores {
		if rp.Score > rowMax[rp.A] {
			rowMax[rp.A] = rp.Score
		}
	}
	for _, rp := range scores {
		if rp.Score < cfg.Threshold {
			continue
		}
		if rp.Score >= rowMax[rp.A]*(1-cfg.RelTolerance)-1e-12 {
			out.Add(rp.A, rp.B)
		}
	}
	return out
}

// COMAScores computes the configuration's combined similarity for every
// cross-language attribute pair.
func COMAScores(td *sim.TypeData, lt *dict.LabelTranslator, cfg COMAConfig) []eval.RankedPair {
	var out []eval.RankedPair
	for _, p := range td.CrossPairs() {
		i, j := p[0], p[1]
		a, b := td.Attrs[i], td.Attrs[j]
		var sum float64
		n := 0
		if cfg.Name {
			sum += nameSimilarity(td, lt, i, j, cfg.TranslateNames)
			n++
		}
		if cfg.Instance {
			sum += instanceSimilarity(td, i, j, cfg.TranslateInstances)
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, eval.RankedPair{A: a.Name, B: b.Name, Score: sum / float64(n)})
	}
	return out
}

// nameSimilarity is COMA's label matcher: the mean of trigram and
// edit-distance similarity, optionally after machine-translating the
// source-language label into English.
func nameSimilarity(td *sim.TypeData, lt *dict.LabelTranslator, i, j int, translate bool) float64 {
	nameA := td.Attrs[i].Name
	nameB := td.Attrs[j].Name
	if td.Attrs[i].Lang != td.Pair.A {
		nameA, nameB = nameB, nameA
	}
	if translate && lt != nil {
		if tr, ok := lt.Translate(nameA); ok {
			nameA = text.Normalize(tr)
		}
	}
	return (text.TrigramSimilarity(nameA, nameB) + text.EditSimilarity(nameA, nameB)) / 2
}

// instanceSimilarity is COMA's instance matcher: cosine over the plain
// value-segment vectors, with the source side dictionary-translated for
// "+D". It deliberately lacks WikiMatch's date/number canonicalization —
// that preprocessing is part of the paper's contribution, not of the
// generic framework it is compared against.
func instanceSimilarity(td *sim.TypeData, i, j int, translated bool) float64 {
	return td.RawVSim(i, j, translated)
}
