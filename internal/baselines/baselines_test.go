package baselines

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/eval"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/text"
	"repro/internal/wiki"
)

var (
	testCorpus *wiki.Corpus
	testTruth  *synth.GroundTruth
)

func corpus(t *testing.T) (*wiki.Corpus, *synth.GroundTruth) {
	t.Helper()
	if testCorpus == nil {
		c, g, err := synth.Generate(synth.SmallConfig())
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testCorpus, testTruth = c, g
	}
	return testCorpus, testTruth
}

func filmTypeData(t *testing.T) *sim.TypeData {
	t.Helper()
	c, _ := corpus(t)
	d := dict.Build(c, wiki.Portuguese, wiki.English)
	return sim.BuildTypeData(c, wiki.PtEn, "filme", "film", d)
}

func filmTruth(t *testing.T) eval.Correspondences {
	t.Helper()
	c, truth := corpus(t)
	freqA, freqB := eval.AttributeFrequencies(c, wiki.PtEn, "filme", "film")
	tt := truth.Types["film"]
	return eval.TruthPairs(freqA, freqB, wiki.PtEn, tt.Correct)
}

func TestLSITopKRecallGrowsWithK(t *testing.T) {
	td := filmTypeData(t)
	truth := filmTruth(t)
	var prevRecall float64
	var prevPairs int
	for _, k := range []int{1, 3, 5, 10} {
		derived := LSITopK(td, 10, k)
		m := eval.Macro(derived, truth)
		if derived.Pairs() < prevPairs {
			t.Errorf("k=%d: fewer pairs (%d) than k smaller (%d)", k, derived.Pairs(), prevPairs)
		}
		if m.Recall+1e-9 < prevRecall {
			t.Errorf("k=%d: recall %v dropped below %v", k, m.Recall, prevRecall)
		}
		prevRecall, prevPairs = m.Recall, derived.Pairs()
	}
}

func TestLSITopKPrecisionDropsWithK(t *testing.T) {
	td := filmTypeData(t)
	truth := filmTruth(t)
	p1 := eval.Macro(LSITopK(td, 10, 1), truth).Precision
	p10 := eval.Macro(LSITopK(td, 10, 10), truth).Precision
	if p10 >= p1 {
		t.Errorf("precision should fall with k: top1=%v top10=%v", p1, p10)
	}
}

func TestLSIRankingCoversAllCrossPairs(t *testing.T) {
	td := filmTypeData(t)
	ranked := LSIRanking(td, 10)
	if len(ranked) != len(td.CrossPairs()) {
		t.Errorf("ranking size = %d, want %d", len(ranked), len(td.CrossPairs()))
	}
}

func TestBoumaHighPrecision(t *testing.T) {
	c, _ := corpus(t)
	truth := filmTruth(t)
	derived := Bouma(c, wiki.PtEn, "filme", "film", DefaultBoumaConfig())
	if derived.Pairs() == 0 {
		t.Fatal("Bouma derived nothing")
	}
	m := eval.Macro(derived, truth)
	if m.Precision < 0.8 {
		t.Errorf("Bouma precision = %v, expected high (paper: near-perfect)", m.Precision)
	}
	// Sanity: it finds the easy link-based alignment.
	if !derived.Has(text.Normalize("direção"), "directed by") {
		t.Error("Bouma missed direção ~ directed by")
	}
}

func TestBoumaThresholdMonotonicity(t *testing.T) {
	c, _ := corpus(t)
	loose := Bouma(c, wiki.PtEn, "filme", "film", BoumaConfig{MinMatchFraction: 0.2, MinVotes: 1})
	strict := Bouma(c, wiki.PtEn, "filme", "film", BoumaConfig{MinMatchFraction: 0.9, MinVotes: 3})
	if strict.Pairs() > loose.Pairs() {
		t.Errorf("stricter config found more pairs: %d > %d", strict.Pairs(), loose.Pairs())
	}
}

// labelTranslator builds the simulated MT system from the ground truth:
// correct template translations plus the literal renderings recorded in
// the lexicon.
func labelTranslator(t *testing.T, errRate float64) *dict.LabelTranslator {
	t.Helper()
	lt := dict.NewLabelTranslator(errRate, 7)
	for _, spec := range synth.TypeSpecs() {
		for _, attr := range spec.Attrs {
			enNames := attr.Names[wiki.English]
			if len(enNames) == 0 {
				continue
			}
			for _, lang := range []wiki.Language{wiki.Portuguese, wiki.Vietnamese} {
				for _, n := range attr.Names[lang] {
					lt.Add(n.Name, enNames[0].Name, attr.Literal)
				}
			}
		}
	}
	return lt
}

func TestCOMAConfigLabels(t *testing.T) {
	labels := map[string]bool{}
	for _, cfg := range COMAConfigs(0.01) {
		labels[cfg.Label()] = true
	}
	for _, want := range []string{"N", "I", "NI", "N+G", "I+D", "NG+ID"} {
		if !labels[want] {
			t.Errorf("missing configuration %s", want)
		}
	}
}

func TestCOMANameMatcherWeakAcrossLanguages(t *testing.T) {
	td := filmTypeData(t)
	truth := filmTruth(t)
	lt := labelTranslator(t, 0.3)
	n := eval.Macro(COMA(td, nil, COMAConfig{Name: true, Threshold: 0.01}), truth)
	ng := eval.Macro(COMA(td, lt, COMAConfig{Name: true, TranslateNames: true, Threshold: 0.01}), truth)
	if n.F >= ng.F {
		t.Errorf("label translation should help the name matcher: N=%v NG=%v", n.F, ng.F)
	}
}

func TestCOMAInstanceMatcherBeatsNameMatcher(t *testing.T) {
	td := filmTypeData(t)
	truth := filmTruth(t)
	n := eval.Macro(COMA(td, nil, COMAConfig{Name: true, Threshold: 0.01}), truth)
	id := eval.Macro(COMA(td, nil, COMAConfig{Instance: true, TranslateInstances: true, Threshold: 0.01}), truth)
	if id.F <= n.F {
		t.Errorf("I+D should beat N across morphologically distinct schemas: I+D=%v N=%v", id.F, n.F)
	}
}

func TestCOMAThresholdSelection(t *testing.T) {
	td := filmTypeData(t)
	low := COMA(td, nil, COMAConfig{Instance: true, Threshold: 0.01})
	high := COMA(td, nil, COMAConfig{Instance: true, Threshold: 0.9})
	if high.Pairs() > low.Pairs() {
		t.Errorf("higher threshold selected more pairs: %d > %d", high.Pairs(), low.Pairs())
	}
}

func TestCOMARelToleranceWidensSelection(t *testing.T) {
	td := filmTypeData(t)
	strict := COMA(td, nil, COMAConfig{Instance: true, Threshold: 0.01, RelTolerance: 0})
	loose := COMA(td, nil, COMAConfig{Instance: true, Threshold: 0.01, RelTolerance: 0.5})
	if loose.Pairs() < strict.Pairs() {
		t.Errorf("relative tolerance should not shrink selection: %d < %d", loose.Pairs(), strict.Pairs())
	}
}
