// Command wikimatchd serves WikiMatch over HTTP: it generates (or loads)
// a multilingual corpus, opens one shared matching session, and exposes
// matching, streaming and corpus inspection as a JSON API. The session's
// artifact cache makes repeated requests cheap — the first /match for a
// pair builds the dictionary and the per-type LSI models, every later
// request reuses them.
//
// Usage:
//
//	wikimatchd [-addr :8080] [-scale small|full]
//	           [-dumps dir]     load XML dumps (<lang>.xml) instead of generating
//	           [-tsim 0.6] [-tlsi 0.1]
//
// Endpoints:
//
//	GET  /corpus/stats                  corpus, cache and config snapshot
//	GET  /match?pair=pt-en              full matching run (JSON)
//	GET  /match/stream?pair=pt-en       per-type results as NDJSON
//	GET  /match/{type}?pair=pt-en       one entity type's alignment
//	POST /session/invalidate?lang=pt    drop cached artifacts
//
// Try:
//
//	curl localhost:8080/corpus/stats
//	curl localhost:8080/match?pair=vi-en
//	curl -N localhost:8080/match/stream?pair=pt-en
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := flag.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	tsim := flag.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := flag.Float64("tlsi", 0.1, "correlation threshold TLSI")
	flag.Parse()

	corpus, err := buildCorpus(*dumpsDir, *scale)
	if err != nil {
		log.Fatal(err)
	}
	stats := corpus.Stats()
	log.Printf("corpus ready: %v articles, %v infoboxes, %v cross pairs",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))
	server := &http.Server{
		Addr:              *addr,
		Handler:           repro.NewHTTPHandler(session),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	log.Printf("wikimatchd listening on %s", *addr)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain of in-flight requests to actually finish.
	stop()
	<-shutdownDone
	log.Print("wikimatchd stopped")
}

// buildCorpus loads <lang>.xml dumps from dir when given, otherwise
// generates the synthetic corpus at the requested scale.
func buildCorpus(dir, scale string) (*repro.Corpus, error) {
	if dir != "" {
		corpus := repro.NewCorpus()
		loaded := 0
		for _, lang := range []repro.Language{repro.English, repro.Portuguese, repro.Vietnamese} {
			path := filepath.Join(dir, string(lang)+".xml")
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("open dump: %w", err)
			}
			res, err := repro.LoadDump(corpus, f, lang)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("load dump %s: %w", path, err)
			}
			log.Printf("loaded %s: %d pages (%d skipped, %d errors)",
				path, res.Pages, res.Skipped, len(res.Errors))
			loaded++
		}
		if loaded == 0 {
			return nil, fmt.Errorf("no <lang>.xml dumps found in %s", dir)
		}
		return corpus, nil
	}
	cfg := repro.SmallCorpus()
	if scale == "full" {
		cfg = repro.DefaultCorpus()
	}
	corpus, _, err := repro.GenerateCorpus(cfg)
	if err != nil {
		return nil, fmt.Errorf("generate corpus: %w", err)
	}
	return corpus, nil
}
