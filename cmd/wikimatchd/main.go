// Command wikimatchd serves WikiMatch over HTTP: it generates (or loads)
// a multilingual corpus, opens one shared matching session, and exposes
// matching, streaming and corpus inspection through wire protocol v1 —
// typed POST JSON endpoints under /v1/ with structured error envelopes —
// plus the legacy GET API as compatibility shims. The session's artifact
// cache makes repeated requests cheap — the first match for a pair
// builds the dictionary and the per-type LSI models, every later request
// reuses them.
//
// Every request runs through the middleware stack: request IDs, access
// logging, a per-request timeout, a concurrency limiter that sheds
// excess load with 429 + Retry-After, panic recovery, and counters
// served at /v1/metrics.
//
// With -store, the daemon completes the offline/online split: on boot it
// warm-starts the session from a snapshot written by `wikimatch
// precompute` (or by a previous run), and on graceful shutdown it
// flushes the current artifact cache back to the same path atomically. A
// snapshot that does not match the corpus (fingerprint) or the requested
// configuration is rejected with a logged warning and the daemon falls
// back to a cold session — stale artifacts are never served.
//
// Usage:
//
//	wikimatchd [-addr :8080] [-scale small|full]
//	           [-dumps dir]       ingest dumps (DBpedia <lang>-*.ttl[.gz|.bz2],
//	                              MediaWiki <lang>.xml) instead of generating
//	           [-store file]      warm-start from snapshot; flush on shutdown
//	           [-max-concurrent 64] [-max-streams 16]
//	           [-request-timeout 5m] [-max-body 1048576]
//	           [-tsim 0.6] [-tlsi 0.1]
//	           [-shard-index N -shard-count M]  serve as one shard of an M-replica fleet
//	wikimatchd -router -shards host:port,host:port,...
//	           [-health-interval 15s] [-hedge 0]
//
// Fleet mode: with -router the daemon serves no corpus of its own;
// instead it fronts the listed shard replicas behind the same /v1
// surface, routing each pair request to the replica the deterministic
// shard map assigns it and scatter-gathering all-pairs batches across
// the fleet into responses byte-identical to a single binary's. Each
// replica is started with the matching -shard-index/-shard-count so it
// warm-loads (and serves) only its owned slice of the snapshot;
// requests for unowned pairs answer 503 pointing back at the router. A
// sharded replica never flushes its snapshot on shutdown — its cache
// holds only a slice, and flushing would clobber the full snapshot.
//
//	wikimatch precompute -scale full -store artifacts.wmsnap
//	wikimatchd -addr :8081 -store artifacts.wmsnap -shard-index 0 -shard-count 2 &
//	wikimatchd -addr :8082 -store artifacts.wmsnap -shard-index 1 -shard-count 2 &
//	wikimatchd -addr :8080 -router -shards localhost:8081,localhost:8082
//	wikimatch -remote http://localhost:8080 -all
//
// Protocol v1 endpoints:
//
//	POST /v1/match        pair or single-type match (JSON MatchRequest)
//	POST /v1/matchall     all-pairs batch: correspondence clusters
//	POST /v1/stream       NDJSON progress stream (pair or all-pairs)
//	GET  /v1/corpus       corpus, cache and config snapshot
//	POST /v1/corpus/delta apply article upserts/removes to the live corpus
//	POST /v1/invalidate   drop cached artifacts ({"lang":"pt"})
//	GET  /v1/healthz      liveness: uptime, snapshot age, cache stats
//	GET  /v1/metrics      middleware counters
//
// The legacy GET endpoints (/match, /match/{type}, /match/stream,
// /matchall, /matchall/stream, /corpus/stats, /healthz, POST
// /session/invalidate) remain as shims over the same handlers.
//
// Try:
//
//	wikimatch precompute -scale full -store artifacts.wmsnap
//	wikimatchd -scale full -store artifacts.wmsnap
//	curl localhost:8080/v1/healthz
//	curl -X POST localhost:8080/v1/match -d '{"pair":"vi-en"}'
//	wikimatch -remote http://localhost:8080 -pair vi-en
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := flag.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	storePath := flag.String("store", "", "artifact snapshot file: warm-start from it on boot, flush to it on shutdown")
	maxConcurrent := flag.Int("max-concurrent", 64, "max concurrently served requests (0 = unlimited); excess gets 429")
	maxStreams := flag.Int("max-streams", 16, "max concurrently served NDJSON streams (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request timeout for non-streaming endpoints (0 = none)")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	tsim := flag.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := flag.Float64("tlsi", 0.1, "correlation threshold TLSI")
	routerMode := flag.Bool("router", false, "run as a fleet router over -shards instead of serving a corpus")
	shardAddrs := flag.String("shards", "", "comma-separated shard replica addresses in shard-index order (router mode)")
	healthInterval := flag.Duration("health-interval", 15*time.Second, "router: shard health-poll cadence (negative disables the poller)")
	hedge := flag.Duration("hedge", 0, "router: hedge read-only shard requests still pending after this delay (0 disables)")
	shardIndex := flag.Int("shard-index", -1, "serve as this shard of a -shard-count fleet: only owned pairs are loaded and served")
	shardCount := flag.Int("shard-count", 0, "total replicas in the fleet (required with -shard-index)")
	flag.Parse()

	middleware := []repro.HTTPHandlerOption{
		repro.WithMaxConcurrent(*maxConcurrent),
		repro.WithMaxStreams(*maxStreams),
		repro.WithRequestTimeout(*requestTimeout),
		repro.WithMaxBodyBytes(*maxBody),
		repro.WithAccessLog(log.Default()),
	}
	if *routerMode {
		runRouter(*addr, *shardAddrs, *healthInterval, *hedge, middleware)
		return
	}
	keep, shardLabel, err := shardFilter(*shardIndex, *shardCount)
	if err != nil {
		log.Fatal(err)
	}

	corpus, err := buildCorpus(*dumpsDir, *scale)
	if err != nil {
		log.Fatal(err)
	}
	stats := corpus.Stats()
	log.Printf("corpus ready: %v articles, %v infoboxes, %v cross pairs",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	opts := []repro.SessionOption{repro.WithTSim(*tsim), repro.WithTLSI(*tlsi)}
	session, flushOnExit := openSession(corpus, *storePath, keep, opts)
	if keep != nil {
		// A sharded replica's cache holds only its owned slice; flushing
		// it would clobber the full snapshot every replica boots from.
		flushOnExit = false
		log.Printf("serving as %s: unowned pairs answer 503 unavailable; snapshot flush disabled", shardLabel)
		middleware = append(middleware, repro.WithShardGate(shardLabel, keep))
	}

	handler := repro.NewHTTPHandler(session, middleware...)
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// WriteTimeout bounds the whole response, including long matches
		// and NDJSON streams, so it is generous; the middleware's
		// per-request timeout and per-line stream write deadlines are the
		// tighter guards. IdleTimeout reaps idle keep-alive connections.
		WriteTimeout: 10 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	log.Printf("wikimatchd listening on %s (protocol %s under /v1/)", *addr, repro.ProtocolVersion)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain of in-flight requests to actually finish.
	stop()
	<-shutdownDone
	if flushOnExit {
		start := time.Now()
		if err := repro.SaveSessionSnapshot(session, *storePath); err != nil {
			log.Printf("snapshot flush failed: %v", err)
		} else {
			cs := session.CacheStats()
			log.Printf("snapshot flushed to %s in %v (%d pairs, %d types)",
				*storePath, time.Since(start).Round(time.Millisecond), cs.PairEntries, cs.TypeEntries)
		}
	}
	log.Print("wikimatchd stopped")
}

// openSession warm-starts from the snapshot when possible, falling back
// to a cold session on any load failure (missing file, stale
// fingerprint, mismatched configuration, corruption) — the daemon must
// come up either way. flushOnExit reports whether the shutdown path may
// write the snapshot back: true after a successful restore or when no
// snapshot exists yet, false when an existing snapshot was rejected —
// a daemon pointed at the wrong corpus (a -scale typo, say) must not
// clobber somebody else's precomputed artifacts.
func openSession(corpus *repro.Corpus, storePath string, keep func(repro.LanguagePair) bool, opts []repro.SessionOption) (_ *repro.Session, flushOnExit bool) {
	if storePath == "" {
		return repro.NewSession(corpus, opts...), false
	}
	start := time.Now()
	session, err := repro.RestoreSessionFromFileFiltered(corpus, storePath, keep, opts...)
	switch {
	case err == nil:
		cs := session.CacheStats()
		log.Printf("warm start: restored %d pairs, %d types from %s in %v",
			cs.RestoredPairs, cs.RestoredTypes, storePath, time.Since(start).Round(time.Millisecond))
		return session, true
	case os.IsNotExist(err):
		log.Printf("no snapshot at %s; starting cold (will flush on shutdown)", storePath)
		return repro.NewSession(corpus, opts...), true
	default:
		log.Printf("snapshot %s rejected: %v; starting cold (snapshot left untouched)", storePath, err)
		return repro.NewSession(corpus, opts...), false
	}
}

// shardFilter resolves the -shard-index/-shard-count pair into the
// ownership predicate the replica gates and warm-loads with. Both flags
// unset means single-binary mode (nil predicate).
func shardFilter(index, count int) (func(repro.LanguagePair) bool, string, error) {
	if index < 0 && count == 0 {
		return nil, "", nil
	}
	if index < 0 || count <= index {
		return nil, "", fmt.Errorf("-shard-index %d and -shard-count %d must satisfy 0 <= index < count", index, count)
	}
	return repro.ShardOwned(index, count), fmt.Sprintf("shard %d/%d", index, count), nil
}

// runRouter serves fleet-router mode: no corpus, no session — just the
// coordinator over the listed shard replicas, with the same middleware
// stack and graceful shutdown as a single binary.
func runRouter(addr, shardAddrs string, healthInterval, hedge time.Duration, middleware []repro.HTTPHandlerOption) {
	var addrs []string
	for _, a := range strings.Split(shardAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-router requires -shards host:port[,host:port...]")
	}
	var clientOpts []repro.APIClientOption
	if hedge > 0 {
		clientOpts = append(clientOpts, repro.WithHedge(hedge))
	}
	rt, err := repro.NewFleetRouter(addrs,
		repro.WithFleetHealthInterval(healthInterval),
		repro.WithFleetLogger(log.Default()),
		repro.WithFleetClientOptions(clientOpts...),
		repro.WithFleetHandlerOptions(middleware...),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	server := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	log.Printf("wikimatchd router listening on %s over %d shards (protocol %s under /v1/)",
		addr, len(addrs), repro.ProtocolVersion)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	stop()
	<-shutdownDone
	log.Print("wikimatchd router stopped")
}

// buildCorpus ingests every recognized dump in dir when given (DBpedia
// TTL and MediaWiki XML, any language set, transparently compressed),
// otherwise generates the synthetic corpus at the requested scale.
func buildCorpus(dir, scale string) (*repro.Corpus, error) {
	if dir != "" {
		res, err := repro.IngestDir(context.Background(), dir, repro.IngestOptions{
			Progress: func(ev repro.IngestProgress) {
				log.Printf("ingested %s (%s, %d bytes): %d triples, %d pages",
					ev.Path, ev.Format, ev.Bytes, ev.Triples, ev.Pages)
			},
		})
		if err != nil {
			return nil, err
		}
		tot := res.Totals()
		log.Printf("ingest: %d editions, %d files, %d bytes, %d entities (%d skipped units) in %v",
			len(res.PerLang), tot.Files, res.Bytes, tot.Entities, tot.SkippedTotal(),
			res.Elapsed.Round(time.Millisecond))
		return res.Corpus, nil
	}
	cfg := repro.SmallCorpus()
	if scale == "full" {
		cfg = repro.DefaultCorpus()
	}
	corpus, _, err := repro.GenerateCorpus(cfg)
	if err != nil {
		return nil, fmt.Errorf("generate corpus: %w", err)
	}
	return corpus, nil
}
