// Command benchall regenerates every table and figure of the paper's
// evaluation and prints them in the same row/series layout the paper
// reports. Four extra experiments time the substrate: "svd" compares
// the seed's dense-Jacobi-then-truncate decomposition against the sparse
// subsystem over every type's occurrence matrix, "session" measures the
// serving-path speedup of a warm session (cached dictionaries and LSI
// artifacts) over a cold one — the cmd-level twin of the
// BenchmarkSessionWarmVsCold gate — "store" times snapshot save/load
// against a cold artifact build, the cmd-level twin of
// BenchmarkStoreRestoreVsCold — and "http" drives a real wikimatchd
// handler over wire protocol v1 through the client SDK, reporting warm
// unary latency and request throughput. "timings" runs all four.
//
// The timing experiments can emit machine-readable output with -json:
// one JSON document carrying the measured sections, for regression
// tracking and the CI warm-session speedup gate.
//
// Usage:
//
// A fifth timing experiment, "router", measures the fleet layer: it
// builds wikimatchd, boots single-core replica subprocesses
// (GOMAXPROCS=1 each, simulating small nodes), and compares a direct
// all-pairs batch on one replica against the same batch
// scatter-gathered by an in-process router over three shard replicas —
// plus the warm unary router-hop overhead. It shells out to the go
// toolchain and must run from inside the repository.
//
// A sixth timing experiment, "audit", times the cross-edition value
// consistency audit end to end: a cold POST /v1/audit on a fresh
// session (the matching phase builds every artifact) against a warm one
// on the same session (the batch served from the artifact cache, only
// the value comparison rerunning).
//
// A seventh timing experiment, "score", measures the pruned scoring
// path against the exhaustive reference on the dump-scale fixture (one
// entity type, hundreds of attributes) with warm artifacts and the
// revise stage disabled on both sides, so the number isolates exactly
// the stage pruning optimizes. The results themselves are proven
// byte-identical by the core equivalence tests; this experiment times
// them.
//
// An eighth timing experiment, "ingest", measures the dump-ingestion
// front door: it generates the multi-edition corpus at ten times the
// fixture scale, writes it as DBpedia-style TTL dumps, and times
// internal/ingest streaming the set back into a corpus — reporting
// throughput (MB/s over raw dump bytes) and the sampled peak heap
// growth the CI ingestion gate bounds. The round trip is verified by
// corpus fingerprint before any number is reported.
//
// With -json, -trajectory FILE upserts the measured document into the
// named trajectory file (BENCH_TRAJECTORY.json in the repo root) under
// the entry name given by -pr, preserving the floors and every other
// entry — the append-only perf history the CI bench gates read their
// thresholds from.
//
//	benchall [-scale small|full] [-run all|table1..table7|figure3..figure7|svd|session|store|http|router|audit|score|ingest|timings] [-json] [-trajectory FILE -pr NAME]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/lsi"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	scale := flag.String("scale", "full", "corpus scale: small or full")
	run := flag.String("run", "all", "experiment to run (all, table1..table7, figure3..figure7, svd, session, store, http, router, audit, score, ingest, timings)")
	jsonOut := flag.Bool("json", false, "emit the timing experiments (svd/session/store/http/audit/score/ingest/timings) as one JSON document")
	trajectory := flag.String("trajectory", "", "with -json: upsert the measured document into this trajectory file")
	prName := flag.String("pr", "", "entry name for -trajectory (e.g. pr9)")
	flag.Parse()

	emitJSON := func(doc timingDoc) {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(1)
		}
		if *trajectory != "" {
			if *prName == "" {
				fmt.Fprintln(os.Stderr, "-trajectory needs -pr to name the entry")
				os.Exit(2)
			}
			if err := upsertTrajectory(*trajectory, *prName, doc); err != nil {
				fmt.Fprintln(os.Stderr, "trajectory:", err)
				os.Exit(1)
			}
		}
	}

	// The router experiment drives wikimatchd subprocesses and needs no
	// in-process Setup — building one would just bloat this process's
	// heap while it plays the router role.
	if *run == "router" {
		rt := measureRouter(*scale)
		if *jsonOut {
			emitJSON(timingDoc{Scale: *scale, Router: &rt})
			return
		}
		renderRouterTimings(rt)
		return
	}

	// The ingest experiment generates its own 10×-scale multi-edition
	// dump set and measures streaming it back; no Setup either.
	if *run == "ingest" {
		it := measureIngest()
		if *jsonOut {
			emitJSON(timingDoc{Scale: *scale, Ingest: &it})
			return
		}
		renderIngestTimings(it)
		return
	}

	// The score experiment runs on its own dump-scale fixture, not the
	// -scale synthetic corpus, so it skips the Setup build too.
	if *run == "score" {
		st := measureScore()
		if *jsonOut {
			emitJSON(timingDoc{Scale: *scale, Score: &st})
			return
		}
		renderScoreTimings(st)
		return
	}

	cfg := synth.DefaultConfig()
	if *scale == "small" {
		cfg = synth.SmallConfig()
	}
	s, err := experiments.NewSetup(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	mcfg := core.DefaultConfig()
	w := os.Stdout

	if *jsonOut {
		doc := timingDoc{Scale: *scale}
		switch *run {
		case "svd":
			doc.SVD = measureSVD(s)
		case "session":
			doc.Session = measureSession(s)
		case "store":
			st := measureStore(s)
			doc.Store = &st
		case "http":
			doc.HTTP = measureHTTP(s)
		case "audit":
			at := measureAudit(s)
			doc.Audit = &at
		case "timings":
			doc.SVD = measureSVD(s)
			doc.Session = measureSession(s)
			st := measureStore(s)
			doc.Store = &st
			doc.HTTP = measureHTTP(s)
			at := measureAudit(s)
			doc.Audit = &at
			sc := measureScore()
			doc.Score = &sc
		default:
			fmt.Fprintf(os.Stderr, "-json applies to the timing experiments only (svd, session, store, http, audit, score, timings), not %q\n", *run)
			os.Exit(2)
		}
		emitJSON(doc)
		return
	}

	switch *run {
	case "all":
		if err := experiments.RenderAll(w, s, mcfg); err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			os.Exit(1)
		}
	case "table1":
		experiments.RenderTable1(w, s.Table1(mcfg))
	case "table2":
		experiments.RenderTable2(w, s.Table2(mcfg))
	case "table3":
		experiments.RenderTable3(w, s.Table3(mcfg))
	case "table5":
		experiments.RenderTable5(w, s.Table5())
	case "table6":
		experiments.RenderTable6(w, s.Table6(mcfg))
	case "table7":
		experiments.RenderTable7(w, s.Table7(mcfg, cfg.Seed))
	case "figure3":
		experiments.RenderFigure3(w, s.Figure3(mcfg))
	case "figure4":
		series, err := s.Figure4(mcfg, 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure4:", err)
			os.Exit(1)
		}
		experiments.RenderFigure4(w, series)
	case "figure5":
		experiments.RenderFigure5(w, s.Figure5(mcfg))
	case "figure6":
		experiments.RenderFigure6(w, s.Figure6(mcfg))
	case "figure7":
		experiments.RenderFigure7(w, s.Figure7())
	case "correlation":
		experiments.RenderOverlapCorrelations(w, s.OverlapCorrelations(mcfg))
	case "extensions":
		experiments.RenderExtensions(w, s.Extensions(mcfg))
	case "svd":
		renderSVDTimings(measureSVD(s))
	case "session":
		renderSessionTimings(measureSession(s))
	case "store":
		renderStoreTimings(measureStore(s))
	case "http":
		renderHTTPTimings(measureHTTP(s))
	case "audit":
		renderAuditTimings(measureAudit(s))
	case "timings":
		renderSVDTimings(measureSVD(s))
		fmt.Println()
		renderSessionTimings(measureSession(s))
		fmt.Println()
		renderStoreTimings(measureStore(s))
		fmt.Println()
		renderHTTPTimings(measureHTTP(s))
		fmt.Println()
		renderAuditTimings(measureAudit(s))
		fmt.Println()
		renderScoreTimings(measureScore())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

// timingDoc is the -json output: only the measured sections are present.
type timingDoc struct {
	Scale   string          `json:"scale"`
	SVD     []svdTiming     `json:"svd,omitempty"`
	Session []sessionTiming `json:"session,omitempty"`
	Store   *storeTiming    `json:"store,omitempty"`
	HTTP    []httpTiming    `json:"http,omitempty"`
	Router  *routerTiming   `json:"router,omitempty"`
	Audit   *auditTiming    `json:"audit,omitempty"`
	Score   *scoreTiming    `json:"score,omitempty"`
	Ingest  *ingestTiming   `json:"ingest,omitempty"`
}

// trajectoryFile is the committed perf history (BENCH_TRAJECTORY.json):
// one entry per PR plus the floors the CI bench gates enforce.
type trajectoryFile struct {
	Floors  map[string]float64 `json:"floors"`
	Entries []trajectoryEntry  `json:"entries"`
}

type trajectoryEntry struct {
	PR string `json:"pr"`
	timingDoc
}

// upsertTrajectory merges doc into the trajectory file under the entry
// named pr: an existing entry with that name gains doc's measured
// sections (sections doc did not measure are kept), any other entry and
// the floors pass through untouched, and a new name appends.
func upsertTrajectory(path, pr string, doc timingDoc) error {
	var tf trajectoryFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &tf); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	merged := false
	for i := range tf.Entries {
		if tf.Entries[i].PR != pr {
			continue
		}
		e := &tf.Entries[i].timingDoc
		e.Scale = doc.Scale
		if doc.SVD != nil {
			e.SVD = doc.SVD
		}
		if doc.Session != nil {
			e.Session = doc.Session
		}
		if doc.Store != nil {
			e.Store = doc.Store
		}
		if doc.HTTP != nil {
			e.HTTP = doc.HTTP
		}
		if doc.Router != nil {
			e.Router = doc.Router
		}
		if doc.Audit != nil {
			e.Audit = doc.Audit
		}
		if doc.Score != nil {
			e.Score = doc.Score
		}
		if doc.Ingest != nil {
			e.Ingest = doc.Ingest
		}
		merged = true
		break
	}
	if !merged {
		tf.Entries = append(tf.Entries, trajectoryEntry{PR: pr, timingDoc: doc})
	}
	out, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// svdTiming is one entity type's dense-vs-sparse decomposition timing.
type svdTiming struct {
	Pair     string  `json:"pair"`
	Type     string  `json:"type"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	NNZ      int     `json:"nnz"`
	DenseNS  int64   `json:"denseNs"`
	SparseNS int64   `json:"sparseNs"`
	Speedup  float64 `json:"speedup"`
}

// sessionTiming is one pair's cold-vs-warm session match timing.
type sessionTiming struct {
	Pair    string  `json:"pair"`
	Types   int     `json:"types"`
	ColdNS  int64   `json:"coldNs"`
	WarmNS  int64   `json:"warmNs"`
	Speedup float64 `json:"speedup"`
}

// storeTiming is the snapshot save/load timing against a cold build.
type storeTiming struct {
	RestoredPairs int     `json:"restoredPairs"`
	RestoredTypes int     `json:"restoredTypes"`
	SnapshotBytes int     `json:"snapshotBytes"`
	ColdNS        int64   `json:"coldNs"`
	SaveNS        int64   `json:"saveNs"`
	LoadNS        int64   `json:"loadNs"`
	ServeNS       int64   `json:"serveNs"`
	LoadSpeedup   float64 `json:"loadSpeedup"`
}

// httpTiming is one pair's wire-protocol serving-path timing.
type httpTiming struct {
	Pair          string  `json:"pair"`
	WarmUnaryNS   int64   `json:"warmUnaryNs"`
	SeqReqPerSec  float64 `json:"seqReqPerSec"`
	ConcReqPerSec float64 `json:"concReqPerSec"`
}

// measureSVD compares the seed's dense Jacobi SVD with the sparse path
// lsi.Build uses today, per entity type, on the type's real
// dual-occurrence matrix.
func measureSVD(s *experiments.Setup) []svdTiming {
	var out []svdTiming
	for _, pair := range s.Pairs() {
		for _, tc := range s.Cases(pair) {
			_, index := lsi.IndexAttrs(tc.TD.Duals, tc.TD.Attrs...)
			sp := lsi.OccurrenceMatrix(tc.TD.Duals, index)
			dense := sp.Dense()
			denseT := timeIt(func() { linalg.TruncatedSVD(dense, lsi.DefaultRank) })
			sparseT := timeIt(func() { linalg.SparseTruncatedSVD(sp, lsi.DefaultRank) })
			out = append(out, svdTiming{
				Pair: pair.String(), Type: tc.Canon,
				Rows: sp.Rows, Cols: sp.Cols, NNZ: sp.NNZ(),
				DenseNS: int64(denseT), SparseNS: int64(sparseT),
				Speedup: float64(denseT) / float64(sparseT),
			})
		}
	}
	return out
}

func renderSVDTimings(rows []svdTiming) {
	fmt.Printf("%-6s %-22s %10s %9s %12s %12s %8s\n",
		"pair", "type", "matrix", "nnz", "dense-jacobi", "sparse-auto", "speedup")
	for _, r := range rows {
		fmt.Printf("%-6s %-22s %4d×%-5d %9d %12s %12s %7.1fx\n",
			r.Pair, r.Type, r.Rows, r.Cols, r.NNZ,
			time.Duration(r.DenseNS).Round(time.Microsecond),
			time.Duration(r.SparseNS).Round(time.Microsecond), r.Speedup)
	}
}

// measureSession measures the artifact cache's serving-path win: per
// pair, a cold session match (fresh session each run, rebuilding
// dictionary + per-type LSI models) against a warm match on one
// prewarmed session (alignment only).
func measureSession(s *experiments.Setup) []sessionTiming {
	ctx := context.Background()
	var out []sessionTiming
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		var types int
		cold := timeIt(func() {
			res, err := service.New(s.Corpus).Match(ctx, pair)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cold match:", err)
				os.Exit(1)
			}
			types = len(res.Types)
		})
		sess := service.New(s.Corpus)
		if _, err := sess.Match(ctx, pair); err != nil {
			fmt.Fprintln(os.Stderr, "prewarm:", err)
			os.Exit(1)
		}
		warm := timeIt(func() {
			if _, err := sess.Match(ctx, pair); err != nil {
				fmt.Fprintln(os.Stderr, "warm match:", err)
				os.Exit(1)
			}
		})
		out = append(out, sessionTiming{
			Pair: pair.String(), Types: types,
			ColdNS: int64(cold), WarmNS: int64(warm),
			Speedup: float64(cold) / float64(warm),
		})
	}
	return out
}

func renderSessionTimings(rows []sessionTiming) {
	fmt.Printf("%-6s %6s %12s %12s %8s\n", "pair", "types", "cold", "warm", "speedup")
	for _, r := range rows {
		fmt.Printf("%-6s %6d %12s %12s %7.1fx\n",
			r.Pair, r.Types,
			time.Duration(r.ColdNS).Round(time.Microsecond),
			time.Duration(r.WarmNS).Round(time.Microsecond), r.Speedup)
	}
}

// measureStore measures the persistence layer's offline/online split at
// the chosen -scale: building every artifact cold (fresh session, both
// pairs) versus saving the warm cache as a snapshot and restoring it —
// the warm-start path wikimatchd -store takes on boot.
func measureStore(s *experiments.Setup) storeTiming {
	ctx := context.Background()
	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
	matchAll := func(sess *service.Session) {
		for _, pair := range pairs {
			if _, err := sess.Match(ctx, pair); err != nil {
				fmt.Fprintln(os.Stderr, "match:", err)
				os.Exit(1)
			}
		}
	}
	cold := timeIt(func() { matchAll(service.New(s.Corpus)) })

	warm := service.New(s.Corpus)
	matchAll(warm)
	var buf bytes.Buffer
	save := timeIt(func() {
		buf.Reset()
		if err := warm.Save(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
	})
	var restored *service.Session
	load := timeIt(func() {
		var err error
		if restored, err = service.Restore(s.Corpus, bytes.NewReader(buf.Bytes())); err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
			os.Exit(1)
		}
	})
	serve := timeIt(func() { matchAll(restored) })

	cs := restored.CacheStats()
	return storeTiming{
		RestoredPairs: cs.RestoredPairs, RestoredTypes: cs.RestoredTypes,
		SnapshotBytes: buf.Len(),
		ColdNS:        int64(cold), SaveNS: int64(save),
		LoadNS: int64(load), ServeNS: int64(serve),
		LoadSpeedup: float64(cold) / float64(load),
	}
}

func renderStoreTimings(st storeTiming) {
	fmt.Printf("artifacts: %d pairs, %d types, snapshot %d bytes\n",
		st.RestoredPairs, st.RestoredTypes, st.SnapshotBytes)
	fmt.Printf("%-22s %12s\n", "stage", "time")
	fmt.Printf("%-22s %12s\n", "cold build+match", time.Duration(st.ColdNS).Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "snapshot save", time.Duration(st.SaveNS).Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "snapshot load", time.Duration(st.LoadNS).Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "match after restore", time.Duration(st.ServeNS).Round(time.Microsecond))
	fmt.Printf("load vs cold build: %.1fx faster\n", st.LoadSpeedup)
}

// measureHTTP measures the serving path end to end over wire protocol
// v1: a real HTTP server over one warm session, driven by the Go client
// SDK. Reported per pair: the unary /v1/match latency on the warm
// cache, sequential and concurrent request throughput — the cmd-level
// twin of BenchmarkHTTPMatchThroughput.
func measureHTTP(s *experiments.Setup) []httpTiming {
	ctx := context.Background()
	srv := httptest.NewServer(service.NewHandler(service.New(s.Corpus)))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
	const (
		seqRequests = 16
		conc        = 8
	)
	var out []httpTiming
	for _, pairName := range []string{"pt-en", "vi-en"} {
		req := protocol.MatchRequest{Pair: pairName}
		if _, err := c.Match(ctx, req); err != nil { // warm the cache
			fmt.Fprintln(os.Stderr, "warm match:", err)
			os.Exit(1)
		}
		warm := timeIt(func() {
			if _, err := c.Match(ctx, req); err != nil {
				fmt.Fprintln(os.Stderr, "match:", err)
				os.Exit(1)
			}
		})
		seq := timeIt(func() {
			for i := 0; i < seqRequests; i++ {
				if _, err := c.Match(ctx, req); err != nil {
					fmt.Fprintln(os.Stderr, "match:", err)
					os.Exit(1)
				}
			}
		})
		par := timeIt(func() {
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < seqRequests/conc; i++ {
						if _, err := c.Match(ctx, req); err != nil {
							fmt.Fprintln(os.Stderr, "match:", err)
							os.Exit(1)
						}
					}
				}()
			}
			wg.Wait()
		})
		out = append(out, httpTiming{
			Pair:          pairName,
			WarmUnaryNS:   int64(warm),
			SeqReqPerSec:  float64(seqRequests) / seq.Seconds(),
			ConcReqPerSec: float64(seqRequests) / par.Seconds(),
		})
	}
	return out
}

func renderHTTPTimings(rows []httpTiming) {
	fmt.Printf("%-6s %12s %14s %14s\n", "pair", "warm-unary", "seq req/s", "conc req/s")
	for _, r := range rows {
		fmt.Printf("%-6s %12s %14.1f %14.1f\n", r.Pair,
			time.Duration(r.WarmUnaryNS).Round(time.Microsecond),
			r.SeqReqPerSec, r.ConcReqPerSec)
	}
}

// auditTiming is the consistency audit's cold-vs-warm serving timing:
// cold pays the full matching phase, warm serves the batch from the
// artifact cache and only reruns the value comparison.
type auditTiming struct {
	Clusters int     `json:"clusters"`
	Entities int     `json:"entities"`
	Compared int     `json:"compared"`
	Findings int     `json:"findings"`
	ColdNS   int64   `json:"coldNs"`
	WarmNS   int64   `json:"warmNs"`
	Speedup  float64 `json:"speedup"`
}

// measureAudit times POST /v1/audit through the typed serving path: a
// cold run on a fresh session against a warm rerun on the same session.
func measureAudit(s *experiments.Setup) auditTiming {
	ctx := context.Background()
	req := protocol.AuditRequest{}
	var resp *protocol.AuditResponse
	cold := timeIt(func() {
		var err error
		if resp, err = service.New(s.Corpus).ServeAudit(ctx, req); err != nil {
			fmt.Fprintln(os.Stderr, "cold audit:", err)
			os.Exit(1)
		}
	})
	sess := service.New(s.Corpus)
	if _, err := sess.ServeAudit(ctx, req); err != nil {
		fmt.Fprintln(os.Stderr, "prewarm audit:", err)
		os.Exit(1)
	}
	warm := timeIt(func() {
		if _, err := sess.ServeAudit(ctx, req); err != nil {
			fmt.Fprintln(os.Stderr, "warm audit:", err)
			os.Exit(1)
		}
	})
	return auditTiming{
		Clusters: resp.Clusters, Entities: resp.Entities,
		Compared: resp.Compared, Findings: len(resp.Findings),
		ColdNS: int64(cold), WarmNS: int64(warm),
		Speedup: float64(cold) / float64(warm),
	}
}

func renderAuditTimings(at auditTiming) {
	fmt.Printf("audit: %d clusters, %d entities, %d comparisons, %d findings\n",
		at.Clusters, at.Entities, at.Compared, at.Findings)
	fmt.Printf("%-12s %12s\n", "stage", "time")
	fmt.Printf("%-12s %12s\n", "cold", time.Duration(at.ColdNS).Round(time.Microsecond))
	fmt.Printf("%-12s %12s\n", "warm", time.Duration(at.WarmNS).Round(time.Microsecond))
	fmt.Printf("warm vs cold: %.1fx faster\n", at.Speedup)
}

// scoreTiming is the pruned-vs-exhaustive scoring-stage timing on the
// dump-scale fixture with warm artifacts.
type scoreTiming struct {
	Attrs        int     `json:"attrs"`
	Boxes        int     `json:"boxes"`
	Queue        int     `json:"queue"`
	Matches      int     `json:"matches"`
	PrunedNS     int64   `json:"prunedNs"`
	ExhaustiveNS int64   `json:"exhaustiveNs"`
	Speedup      float64 `json:"speedup"`
}

// measureScore times MatchTypeCtx on the shared dump-scale fixture
// (synth.DefaultDumpScale — one entity type, hundreds of attributes,
// the regime where pair scoring dominates) over warm artifacts: the
// default pruned configuration against the exhaustive reference. The
// revise stage is disabled on both sides — it runs identical code on
// either path and would only dilute the ratio; the full-pipeline
// equivalence is pinned separately by the core test suite. The
// cmd-level twin of BenchmarkMatchPruned / BenchmarkMatchExhaustive.
func measureScore() scoreTiming {
	ctx := context.Background()
	dcfg := synth.DefaultDumpScale()
	c := synth.DumpScale(dcfg)
	tps := core.MatchEntityTypes(c, wiki.PtEn)
	if len(tps) != 1 {
		fmt.Fprintf(os.Stderr, "score: dump-scale fixture has %d type pairs, want 1\n", len(tps))
		os.Exit(1)
	}
	d := dict.Build(c, wiki.Portuguese, wiki.English)
	prunedCfg := core.DefaultConfig()
	prunedCfg.DisableRevise = true
	exCfg := prunedCfg
	exCfg.ExactScore = true
	mp := core.NewMatcher(prunedCfg)
	me := core.NewMatcher(exCfg)
	art, err := mp.BuildTypeArtifacts(ctx, c, wiki.PtEn, tps[0][0], tps[0][1], d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "score artifacts:", err)
		os.Exit(1)
	}
	match := func(m *core.Matcher) *core.TypeResult {
		tr, err := m.MatchTypeCtx(ctx, c, wiki.PtEn, tps[0][0], tps[0][1], d, art)
		if err != nil {
			fmt.Fprintln(os.Stderr, "score match:", err)
			os.Exit(1)
		}
		return tr
	}
	tr := match(mp) // warm: lazy kernel, quantization and scratch
	match(me)
	pruned := timeIt(func() { match(mp) })
	ex := timeIt(func() { match(me) })
	return scoreTiming{
		Attrs: len(art.TD.Attrs), Boxes: dcfg.Boxes,
		Queue: len(tr.Candidates), Matches: len(tr.Matches.Components()),
		PrunedNS: int64(pruned), ExhaustiveNS: int64(ex),
		Speedup: float64(ex) / float64(pruned),
	}
}

func renderScoreTimings(st scoreTiming) {
	fmt.Printf("score: dump-scale fixture, %d attrs over %d boxes, queue %d, %d match components\n",
		st.Attrs, st.Boxes, st.Queue, st.Matches)
	fmt.Printf("%-22s %12s\n", "path", "time")
	fmt.Printf("%-22s %12s\n", "pruned (default)", time.Duration(st.PrunedNS).Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "exhaustive reference", time.Duration(st.ExhaustiveNS).Round(time.Microsecond))
	fmt.Printf("pruned vs exhaustive: %.1fx faster\n", st.Speedup)
}

// timeIt returns the best of three runs — enough to flatten scheduler
// noise without benchmark machinery.
func timeIt(fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
