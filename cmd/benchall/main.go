// Command benchall regenerates every table and figure of the paper's
// evaluation and prints them in the same row/series layout the paper
// reports. Three extra experiments time the substrate: "svd" compares
// the seed's dense-Jacobi-then-truncate decomposition against the sparse
// subsystem over every type's occurrence matrix, "session" measures the
// serving-path speedup of a warm session (cached dictionaries and LSI
// artifacts) over a cold one — the cmd-level twin of the
// BenchmarkSessionWarmVsCold gate — and "store" times snapshot
// save/load against a cold artifact build, the cmd-level twin of
// BenchmarkStoreRestoreVsCold — and "http" drives a real wikimatchd
// handler over wire protocol v1 through the client SDK, reporting warm
// unary latency and request throughput.
//
// Usage:
//
//	benchall [-scale small|full] [-run all|table1|table2|table3|table5|table6|table7|figure3|figure4|figure5|figure6|figure7|svd|session|store|http]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/lsi"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	scale := flag.String("scale", "full", "corpus scale: small or full")
	run := flag.String("run", "all", "experiment to run (all, table1..table7, figure3..figure7, svd)")
	flag.Parse()

	cfg := synth.DefaultConfig()
	if *scale == "small" {
		cfg = synth.SmallConfig()
	}
	s, err := experiments.NewSetup(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	mcfg := core.DefaultConfig()
	w := os.Stdout

	switch *run {
	case "all":
		if err := experiments.RenderAll(w, s, mcfg); err != nil {
			fmt.Fprintln(os.Stderr, "render:", err)
			os.Exit(1)
		}
	case "table1":
		experiments.RenderTable1(w, s.Table1(mcfg))
	case "table2":
		experiments.RenderTable2(w, s.Table2(mcfg))
	case "table3":
		experiments.RenderTable3(w, s.Table3(mcfg))
	case "table5":
		experiments.RenderTable5(w, s.Table5())
	case "table6":
		experiments.RenderTable6(w, s.Table6(mcfg))
	case "table7":
		experiments.RenderTable7(w, s.Table7(mcfg, cfg.Seed))
	case "figure3":
		experiments.RenderFigure3(w, s.Figure3(mcfg))
	case "figure4":
		series, err := s.Figure4(mcfg, 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure4:", err)
			os.Exit(1)
		}
		experiments.RenderFigure4(w, series)
	case "figure5":
		experiments.RenderFigure5(w, s.Figure5(mcfg))
	case "figure6":
		experiments.RenderFigure6(w, s.Figure6(mcfg))
	case "figure7":
		experiments.RenderFigure7(w, s.Figure7())
	case "correlation":
		experiments.RenderOverlapCorrelations(w, s.OverlapCorrelations(mcfg))
	case "extensions":
		experiments.RenderExtensions(w, s.Extensions(mcfg))
	case "svd":
		renderSVDTimings(s)
	case "session":
		renderSessionTimings(s)
	case "store":
		renderStoreTimings(s)
	case "http":
		renderHTTPTimings(s)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

// renderSVDTimings compares the seed's dense Jacobi SVD with the sparse
// path lsi.Build uses today, per entity type, on the type's real
// dual-occurrence matrix.
func renderSVDTimings(s *experiments.Setup) {
	fmt.Printf("%-6s %-22s %10s %9s %12s %12s %8s\n",
		"pair", "type", "matrix", "nnz", "dense-jacobi", "sparse-auto", "speedup")
	for _, pair := range s.Pairs() {
		for _, tc := range s.Cases(pair) {
			_, index := lsi.IndexAttrs(tc.TD.Duals, tc.TD.Attrs...)
			sp := lsi.OccurrenceMatrix(tc.TD.Duals, index)
			dense := sp.Dense()
			denseT := timeIt(func() { linalg.TruncatedSVD(dense, lsi.DefaultRank) })
			sparseT := timeIt(func() { linalg.SparseTruncatedSVD(sp, lsi.DefaultRank) })
			fmt.Printf("%-6s %-22s %4d×%-5d %9d %12s %12s %7.1fx\n",
				pair, tc.Canon, sp.Rows, sp.Cols, sp.NNZ(),
				denseT.Round(time.Microsecond), sparseT.Round(time.Microsecond),
				float64(denseT)/float64(sparseT))
		}
	}
}

// renderSessionTimings measures the artifact cache's serving-path win:
// per pair, a cold session match (fresh session each run, rebuilding
// dictionary + per-type LSI models) against a warm match on one
// prewarmed session (alignment only).
func renderSessionTimings(s *experiments.Setup) {
	ctx := context.Background()
	fmt.Printf("%-6s %6s %12s %12s %8s\n", "pair", "types", "cold", "warm", "speedup")
	for _, pair := range []wiki.LanguagePair{wiki.PtEn, wiki.VnEn} {
		var types int
		cold := timeIt(func() {
			res, err := service.New(s.Corpus).Match(ctx, pair)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cold match:", err)
				os.Exit(1)
			}
			types = len(res.Types)
		})
		sess := service.New(s.Corpus)
		if _, err := sess.Match(ctx, pair); err != nil {
			fmt.Fprintln(os.Stderr, "prewarm:", err)
			os.Exit(1)
		}
		warm := timeIt(func() {
			if _, err := sess.Match(ctx, pair); err != nil {
				fmt.Fprintln(os.Stderr, "warm match:", err)
				os.Exit(1)
			}
		})
		fmt.Printf("%-6s %6d %12s %12s %7.1fx\n",
			pair, types, cold.Round(time.Microsecond), warm.Round(time.Microsecond),
			float64(cold)/float64(warm))
	}
}

// renderStoreTimings measures the persistence layer's offline/online
// split at the chosen -scale: building every artifact cold (fresh
// session, both pairs) versus saving the warm cache as a snapshot and
// restoring it — the warm-start path wikimatchd -store takes on boot.
func renderStoreTimings(s *experiments.Setup) {
	ctx := context.Background()
	pairs := []wiki.LanguagePair{wiki.PtEn, wiki.VnEn}
	matchAll := func(sess *service.Session) {
		for _, pair := range pairs {
			if _, err := sess.Match(ctx, pair); err != nil {
				fmt.Fprintln(os.Stderr, "match:", err)
				os.Exit(1)
			}
		}
	}
	cold := timeIt(func() { matchAll(service.New(s.Corpus)) })

	warm := service.New(s.Corpus)
	matchAll(warm)
	var buf bytes.Buffer
	save := timeIt(func() {
		buf.Reset()
		if err := warm.Save(&buf); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
	})
	var restored *service.Session
	load := timeIt(func() {
		var err error
		if restored, err = service.Restore(s.Corpus, bytes.NewReader(buf.Bytes())); err != nil {
			fmt.Fprintln(os.Stderr, "restore:", err)
			os.Exit(1)
		}
	})
	serve := timeIt(func() { matchAll(restored) })

	cs := restored.CacheStats()
	fmt.Printf("artifacts: %d pairs, %d types, snapshot %d bytes\n",
		cs.RestoredPairs, cs.RestoredTypes, buf.Len())
	fmt.Printf("%-22s %12s\n", "stage", "time")
	fmt.Printf("%-22s %12s\n", "cold build+match", cold.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "snapshot save", save.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "snapshot load", load.Round(time.Microsecond))
	fmt.Printf("%-22s %12s\n", "match after restore", serve.Round(time.Microsecond))
	fmt.Printf("load vs cold build: %.1fx faster\n", float64(cold)/float64(load))
}

// renderHTTPTimings measures the serving path end to end over wire
// protocol v1: a real HTTP server over one warm session, driven by the
// Go client SDK. Reported per pair: the unary /v1/match latency on the
// warm cache, sequential and concurrent request throughput — the
// cmd-level twin of BenchmarkHTTPMatchThroughput.
func renderHTTPTimings(s *experiments.Setup) {
	ctx := context.Background()
	srv := httptest.NewServer(service.NewHandler(service.New(s.Corpus)))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
	const (
		seqRequests = 16
		conc        = 8
	)
	fmt.Printf("%-6s %12s %14s %14s\n", "pair", "warm-unary", "seq req/s", "conc req/s")
	for _, pairName := range []string{"pt-en", "vi-en"} {
		req := protocol.MatchRequest{Pair: pairName}
		if _, err := c.Match(ctx, req); err != nil { // warm the cache
			fmt.Fprintln(os.Stderr, "warm match:", err)
			os.Exit(1)
		}
		warm := timeIt(func() {
			if _, err := c.Match(ctx, req); err != nil {
				fmt.Fprintln(os.Stderr, "match:", err)
				os.Exit(1)
			}
		})
		seq := timeIt(func() {
			for i := 0; i < seqRequests; i++ {
				if _, err := c.Match(ctx, req); err != nil {
					fmt.Fprintln(os.Stderr, "match:", err)
					os.Exit(1)
				}
			}
		})
		par := timeIt(func() {
			var wg sync.WaitGroup
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < seqRequests/conc; i++ {
						if _, err := c.Match(ctx, req); err != nil {
							fmt.Fprintln(os.Stderr, "match:", err)
							os.Exit(1)
						}
					}
				}()
			}
			wg.Wait()
		})
		fmt.Printf("%-6s %12s %14.1f %14.1f\n", pairName,
			warm.Round(time.Microsecond),
			float64(seqRequests)/seq.Seconds(),
			float64(seqRequests)/par.Seconds())
	}
}

// timeIt returns the best of three runs — enough to flatten scheduler
// noise without benchmark machinery.
func timeIt(fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
