package main

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/wiki"
)

// routerTiming is the fleet scale-out experiment: the same direct-mode
// all-pairs batch run cold on one replica-sized node and
// scatter-gathered by a router over three such nodes, plus the router
// hop's warm unary overhead. NodeMilliCPU records how much CPU one
// node held (1000 = a full core), so the numbers are interpretable on
// any host.
type routerTiming struct {
	Scale             string  `json:"scale"`
	Shards            int     `json:"shards"`
	Pairs             int     `json:"pairs"`
	NodeMilliCPU      int     `json:"nodeMilliCpu"`
	SingleColdNS      int64   `json:"singleColdNs"`
	FleetColdNS       int64   `json:"fleetColdNs"`
	Speedup           float64 `json:"speedup"`
	ShardWarmUnaryNS  int64   `json:"shardWarmUnaryNs"`
	RouterWarmUnaryNS int64   `json:"routerWarmUnaryNs"`
	HopOverheadNS     int64   `json:"hopOverheadNs"`
}

const fleetShards = 3

// measureRouter runs the scale-out experiment with real wikimatchd
// subprocesses modelling identical small nodes: every replica runs
// with GOMAXPROCS=1, and on hosts with fewer cores than shards each
// replica is additionally confined (via cgroup CPU bandwidth, when
// writable) to an equal slice of the host — cores/shards each — so
// the fleet's aggregate equals the host and the single-replica
// baseline holds exactly one node's worth. That is the standard
// single-host emulation of horizontal scale-out: the single node works
// the whole batch alone while the fleet's nodes genuinely run
// concurrently. The batch runs in direct mode so all three pairs
// (pt-en, vi-en, pt-vi) are matched rather than two.
func measureRouter(scale string) routerTiming {
	ctx := context.Background()
	bin := buildWikimatchd()
	defer os.RemoveAll(filepath.Dir(bin))

	slices := newNodeSlices(fleetShards)
	defer slices.cleanup()

	allReq := protocol.MatchRequest{All: true, Mode: "direct"}

	// coldBatch times the direct all-pairs batch from a cold artifact
	// cache, best of three runs with a full invalidation between them —
	// each run rebuilds every dictionary and LSI model, the best-of
	// flattens scheduler noise.
	coldBatch := func(c *client.Client) (best time.Duration, resp *protocol.MatchAllResponse) {
		best = time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if _, err := c.Invalidate(ctx, ""); err != nil {
				fatal("invalidate", err)
			}
			d := timeOnce(func() {
				var err error
				if resp, err = c.MatchAll(ctx, allReq); err != nil {
					fatal("matchall", err)
				}
			})
			if d < best {
				best = d
			}
		}
		return best, resp
	}

	// Single replica on one node slice, cold batch.
	single := startReplica(bin, scale, nil)
	defer single.stop()
	slices.confine(single.cmd.Process.Pid)
	singleCold, singleResp := coldBatch(single.client)

	// Three shard replicas, one core each, plus an in-process router.
	replicas := make([]*replica, fleetShards)
	addrs := make([]string, fleetShards)
	for i := range replicas {
		replicas[i] = startReplica(bin, scale, []string{
			"-shard-index", fmt.Sprint(i), "-shard-count", fmt.Sprint(fleetShards)})
		defer replicas[i].stop()
		slices.confine(replicas[i].cmd.Process.Pid)
		addrs[i] = replicas[i].addr
	}
	rt, err := router.New(addrs, router.WithHealthInterval(-1))
	if err != nil {
		fatal("router", err)
	}
	defer rt.Close()
	rtSrv := httptest.NewServer(rt.Handler())
	defer rtSrv.Close()
	rc, err := client.New(rtSrv.URL)
	if err != nil {
		fatal("router client", err)
	}
	fleetCold, fleetResp := coldBatch(rc)
	if len(fleetResp.Planned) != len(singleResp.Planned) {
		fatal("plan mismatch", fmt.Errorf("fleet planned %d pairs, single %d",
			len(fleetResp.Planned), len(singleResp.Planned)))
	}

	// Warm unary hop overhead: the same cached pt-en match asked of its
	// owning shard directly and through the router. The shard is lifted
	// out of its node slice first — with the bandwidth cap in place the
	// probes measure CFS throttle windows, not the router hop.
	owner := replicas[router.ShardFor(wiki.PtEn, fleetShards)]
	slices.release(owner.cmd.Process.Pid)
	unary := protocol.MatchRequest{Pair: "pt-en"}
	probe := func(c *client.Client) time.Duration {
		return timeOnce(func() {
			if _, err := c.Match(ctx, unary); err != nil {
				fatal("warm match", err)
			}
		})
	}
	// Interleave the two probes so neither benefits from being measured
	// last; best of eight paired rounds after one warm-up each.
	shardWarm := time.Duration(1<<63 - 1)
	routerWarm := shardWarm
	probe(owner.client)
	probe(rc)
	for i := 0; i < 8; i++ {
		if d := probe(owner.client); d < shardWarm {
			shardWarm = d
		}
		if d := probe(rc); d < routerWarm {
			routerWarm = d
		}
	}

	return routerTiming{
		Scale:             scale,
		Shards:            fleetShards,
		Pairs:             len(fleetResp.Planned),
		NodeMilliCPU:      slices.nodeMilliCPU(),
		SingleColdNS:      int64(singleCold),
		FleetColdNS:       int64(fleetCold),
		Speedup:           float64(singleCold) / float64(fleetCold),
		ShardWarmUnaryNS:  int64(shardWarm),
		RouterWarmUnaryNS: int64(routerWarm),
		HopOverheadNS:     int64(routerWarm - shardWarm),
	}
}

func renderRouterTimings(rt routerTiming) {
	fmt.Printf("fleet scale-out (%s scale, direct mode, %d pairs, %dm CPU per node)\n",
		rt.Scale, rt.Pairs, rt.NodeMilliCPU)
	fmt.Printf("%-34s %12s\n", "stage", "time")
	fmt.Printf("%-34s %12s\n", "cold matchall, 1 replica",
		time.Duration(rt.SingleColdNS).Round(time.Millisecond))
	fmt.Printf("%-34s %12s\n", fmt.Sprintf("cold matchall, router+%d shards", rt.Shards),
		time.Duration(rt.FleetColdNS).Round(time.Millisecond))
	fmt.Printf("scatter-gather vs single replica: %.2fx\n", rt.Speedup)
	fmt.Printf("%-34s %12s\n", "warm unary, shard direct",
		time.Duration(rt.ShardWarmUnaryNS).Round(time.Microsecond))
	fmt.Printf("%-34s %12s\n", "warm unary, through router",
		time.Duration(rt.RouterWarmUnaryNS).Round(time.Microsecond))
	fmt.Printf("router hop overhead: %s\n",
		time.Duration(rt.HopOverheadNS).Round(time.Microsecond))
}

// nodeSlices confines replica subprocesses to identical CPU-bandwidth
// slices so each models one node of an n-node fleet. On hosts with at
// least n cores no confinement is needed — GOMAXPROCS=1 per replica
// already pins each node to one core. On smaller hosts each replica is
// placed in its own cgroup with quota cores/n of a period, when the
// cgroup filesystem is writable (root); otherwise confinement is
// skipped and the reported NodeMilliCPU reflects that.
type nodeSlices struct {
	base     string // cgroup parent dir, "" when confinement is off
	v2       bool
	quotaUS  int
	periodUS int
	dirs     []string
	confined bool
}

func newNodeSlices(nodes int) *nodeSlices {
	cores := runtime.NumCPU()
	if cores >= nodes {
		return &nodeSlices{}
	}
	const period = 100000
	ns := &nodeSlices{quotaUS: period * cores / nodes, periodUS: period}
	if fi, err := os.Stat("/sys/fs/cgroup/cpu"); err == nil && fi.IsDir() {
		ns.base = "/sys/fs/cgroup/cpu"
	} else if raw, err := os.ReadFile("/sys/fs/cgroup/cgroup.controllers"); err == nil &&
		strings.Contains(string(raw), "cpu") {
		ns.base, ns.v2 = "/sys/fs/cgroup", true
	} else {
		fmt.Fprintln(os.Stderr, "router bench: no writable cpu cgroup; replicas run unconfined")
		return &nodeSlices{}
	}
	return ns
}

// confine moves pid into a fresh node slice; best effort — on failure
// the replica just runs unconfined and the timing doc says so.
func (ns *nodeSlices) confine(pid int) {
	if ns.base == "" {
		return
	}
	dir := filepath.Join(ns.base, fmt.Sprintf("benchall-node-%d-%d", os.Getpid(), len(ns.dirs)))
	if err := os.Mkdir(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "router bench: cgroup mkdir:", err)
		return
	}
	ns.dirs = append(ns.dirs, dir)
	var err error
	if ns.v2 {
		err = os.WriteFile(filepath.Join(dir, "cpu.max"),
			[]byte(fmt.Sprintf("%d %d", ns.quotaUS, ns.periodUS)), 0o644)
	} else {
		err = os.WriteFile(filepath.Join(dir, "cpu.cfs_period_us"), []byte(fmt.Sprint(ns.periodUS)), 0o644)
		if err == nil {
			err = os.WriteFile(filepath.Join(dir, "cpu.cfs_quota_us"), []byte(fmt.Sprint(ns.quotaUS)), 0o644)
		}
	}
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "cgroup.procs"), []byte(fmt.Sprint(pid)), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "router bench: cgroup confine:", err)
		return
	}
	ns.confined = true
}

// release moves pid back to the root cgroup, lifting its bandwidth
// cap. Used after the cold scale-out phase so warm latency probes
// measure hop cost rather than CFS throttling artifacts.
func (ns *nodeSlices) release(pid int) {
	if ns.base == "" || !ns.confined {
		return
	}
	if err := os.WriteFile(filepath.Join(ns.base, "cgroup.procs"),
		[]byte(fmt.Sprint(pid)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "router bench: cgroup release:", err)
	}
}

// nodeMilliCPU reports one node's CPU share in milli-cores.
func (ns *nodeSlices) nodeMilliCPU() int {
	if ns.confined {
		return 1000 * ns.quotaUS / ns.periodUS
	}
	return 1000 // GOMAXPROCS=1: one full core per replica
}

func (ns *nodeSlices) cleanup() {
	for _, d := range ns.dirs {
		// The replica must already be dead; an empty cgroup removes
		// cleanly.
		_ = os.Remove(d)
	}
}

// replica is one wikimatchd subprocess.
type replica struct {
	addr   string
	cmd    *exec.Cmd
	client *client.Client
}

func (r *replica) stop() {
	if r.cmd.Process != nil {
		_ = r.cmd.Process.Kill()
		_ = r.cmd.Wait()
	}
}

// startReplica boots a wikimatchd subprocess with GOMAXPROCS=1 on a
// fresh port and waits for it to answer /v1/healthz.
func startReplica(bin, scale string, extraArgs []string) *replica {
	port := freePort()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := append([]string{"-addr", addr, "-scale", scale}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal("start replica", err)
	}
	c, err := client.New("http://" + addr)
	if err != nil {
		fatal("replica client", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return &replica{addr: addr, cmd: cmd, client: c}
		}
		if time.Now().After(deadline) {
			fatal("replica never became healthy", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// buildWikimatchd compiles the daemon into a fresh temp dir and returns
// the binary path. The go toolchain resolves the module from the
// current directory, so the experiment must run from inside the repo.
func buildWikimatchd() string {
	dir, err := os.MkdirTemp("", "benchall-router")
	if err != nil {
		fatal("tempdir", err)
	}
	bin := filepath.Join(dir, "wikimatchd")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/wikimatchd").CombinedOutput()
	if err != nil {
		fatal("go build wikimatchd", fmt.Errorf("%v: %s", err, strings.TrimSpace(string(out))))
	}
	return bin
}

func freePort() int {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("listen", err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// timeOnce times a single run — the cold-batch stages build real
// artifacts and must not be repeated (a second run would be warm).
func timeOnce(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func fatal(msg string, err error) {
	fmt.Fprintln(os.Stderr, msg+":", err)
	os.Exit(1)
}
