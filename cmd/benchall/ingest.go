package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/synth"
)

// ingestTiming is the dump-ingestion throughput experiment: the
// multi-edition TTL dump set at ten times the fixture scale, streamed
// back into a corpus, with the sampled peak heap growth that the CI
// bound gates — ingestion must stay bounded by the corpus it builds,
// never by the dump bytes it reads.
type ingestTiming struct {
	Editions   int     `json:"editions"`
	Files      int     `json:"files"`
	Bytes      int64   `json:"bytes"`
	Triples    int     `json:"triples"`
	Entities   int     `json:"entities"`
	ElapsedNS  int64   `json:"elapsedNs"`
	MBPerSec   float64 `json:"mbPerSec"`
	PeakHeapMB float64 `json:"peakHeapMb"`
}

// ingestScaleFactor multiplies the DefaultEditions fixture size; 10×
// is the ISSUE's dump-scale target.
const ingestScaleFactor = 10

// measureIngest generates the 12-edition corpus at ingestScaleFactor×
// the fixture scale, writes it as plain TTL dumps, and times ingest.Dir
// reading it back — verifying the round trip by fingerprint, so the
// number measures the real assembly path, not a lucky partial parse.
func measureIngest() ingestTiming {
	cfg := synth.DefaultEditions()
	cfg.EntitiesPerType *= ingestScaleFactor
	corpus, _, err := synth.Editions(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingest: generate:", err)
		os.Exit(1)
	}
	wantFP := corpus.Fingerprint()

	dir, err := os.MkdirTemp("", "wmingest")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	for _, lang := range corpus.Languages() {
		writeTTL(dir, string(lang)+"-infobox-properties.ttl", func(w *os.File) error {
			return ingest.WriteProperties(w, corpus, lang)
		})
		writeTTL(dir, string(lang)+"-interlanguage-links.ttl", func(w *os.File) error {
			return ingest.WriteLinks(w, corpus, lang)
		})
	}
	// Release the generated corpus before measuring: the experiment's
	// heap peak should cover ingestion and the corpus it assembles, not
	// the generator's copy.
	editions := len(corpus.Languages())
	corpus = nil
	runtime.GC()

	var (
		best     = time.Duration(1<<63 - 1)
		peakMB   float64
		res      *ingest.Result
		baseline runtime.MemStats
	)
	for i := 0; i < 3; i++ {
		runtime.GC()
		runtime.ReadMemStats(&baseline)
		stop := make(chan struct{})
		var peak atomic.Uint64
		go func() {
			var ms runtime.MemStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		start := time.Now()
		r, err := ingest.Dir(context.Background(), dir, ingest.Options{})
		elapsed := time.Since(start)
		close(stop)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
		if got := r.Corpus.Fingerprint(); got != wantFP {
			fmt.Fprintf(os.Stderr, "ingest: round trip diverged: %x != %x\n", got, wantFP)
			os.Exit(1)
		}
		if elapsed < best {
			best = elapsed
			res = r
		}
		if mb := float64(peak.Load()-baseline.HeapAlloc) / (1 << 20); mb > peakMB {
			peakMB = mb
		}
	}

	tot := res.Totals()
	return ingestTiming{
		Editions:   editions,
		Files:      tot.Files,
		Bytes:      res.Bytes,
		Triples:    tot.Triples,
		Entities:   tot.Entities,
		ElapsedNS:  int64(best),
		MBPerSec:   float64(res.Bytes) / (1 << 20) / best.Seconds(),
		PeakHeapMB: peakMB,
	}
}

func writeTTL(dir, name string, render func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err == nil {
		if err = render(f); err == nil {
			err = f.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingest: write dump:", err)
		os.Exit(1)
	}
}

func renderIngestTimings(it ingestTiming) {
	fmt.Printf("ingest: %d editions, %d files, %d bytes, %d triples → %d entities\n",
		it.Editions, it.Files, it.Bytes, it.Triples, it.Entities)
	fmt.Printf("%-22s %12s\n", "stage", "value")
	fmt.Printf("%-22s %12s\n", "elapsed (best of 3)", time.Duration(it.ElapsedNS).Round(time.Millisecond))
	fmt.Printf("%-22s %9.1f MB/s\n", "throughput", it.MBPerSec)
	fmt.Printf("%-22s %9.1f MB\n", "peak heap growth", it.PeakHeapMB)
}
