// Command wikimatch runs the WikiMatch aligner end to end: it generates
// (or loads) a multilingual corpus, opens a matching session, matches
// entity types and attributes across a language pair, and prints the
// derived correspondences with their evaluation against the ground
// truth. The -stream flag prints per-type results as they complete
// instead of waiting for the whole pair.
//
// Usage:
//
//	wikimatch [-pair pt-en|vi-en] [-type filme] [-scale small|full]
//	          [-dumps dir]     load XML dumps (<lang>.xml) instead of generating
//	          [-tsim 0.6] [-tlsi 0.1] [-stream]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/dump"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	pairFlag := flag.String("pair", "pt-en", "language pair: pt-en or vi-en")
	typeFlag := flag.String("type", "", "restrict output to one source-language type name")
	scale := flag.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := flag.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	tsim := flag.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := flag.Float64("tlsi", 0.1, "correlation threshold TLSI")
	stream := flag.Bool("stream", false, "print per-type results as each type completes")
	flag.Parse()

	pair, err := repro.ParseLanguagePair(*pairFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var corpus *wiki.Corpus
	var truth *synth.GroundTruth
	if *dumpsDir != "" {
		corpus = wiki.NewCorpus()
		for _, lang := range []wiki.Language{wiki.English, wiki.Portuguese, wiki.Vietnamese} {
			path := filepath.Join(*dumpsDir, string(lang)+".xml")
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "open dump:", err)
				os.Exit(1)
			}
			res, err := dump.LoadCorpus(corpus, f, lang)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "load dump:", err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s: %d pages (%d skipped, %d errors)\n",
				path, res.Pages, res.Skipped, len(res.Errors))
		}
	} else {
		cfg := synth.SmallConfig()
		if *scale == "full" {
			cfg = synth.DefaultConfig()
		}
		var err error
		corpus, truth, err = synth.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generate:", err)
			os.Exit(1)
		}
	}

	stats := corpus.Stats()
	fmt.Printf("corpus: %v articles, %v infoboxes, %v cross pairs\n\n",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	ctx := context.Background()
	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))

	types, err := session.Types(ctx, pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "match types:", err)
		os.Exit(1)
	}
	fmt.Printf("matched entity types (%s):\n", pair)
	for _, tp := range types {
		fmt.Printf("  %-28s ~ %s\n", tp[0], tp[1])
	}
	fmt.Println()

	if *stream {
		updates, err := session.MatchStream(ctx, pair)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		for u := range updates {
			if u.Err != nil {
				fmt.Fprintln(os.Stderr, "stream:", u.Err)
				os.Exit(1)
			}
			if *typeFlag != "" && u.TypeA != *typeFlag {
				continue
			}
			printType(corpus, truth, pair, u.TypeA, u.TypeB, u.Result)
		}
		return
	}

	res, err := session.Match(ctx, pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "match:", err)
		os.Exit(1)
	}
	for _, tp := range res.Types {
		if *typeFlag != "" && tp[0] != *typeFlag {
			continue
		}
		printType(corpus, truth, pair, tp[0], tp[1], res.PerType[tp])
	}
}

// printType renders one type's correspondences and, when ground truth is
// available, its weighted scores.
func printType(corpus *wiki.Corpus, truth *synth.GroundTruth, pair wiki.LanguagePair, typeA, typeB string, tr *repro.TypeMatchResult) {
	fmt.Printf("== %s ~ %s\n", typeA, typeB)
	for _, p := range tr.CrossPairsSorted() {
		fmt.Printf("  %-30s ~ %s\n", p[0], p[1])
	}
	if truth != nil {
		if canon, ok := truth.CanonType(pair.A, typeA); ok {
			tt := truth.Types[canon]
			freqA, freqB := eval.AttributeFrequencies(corpus, pair, typeA, typeB)
			g := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
			derived := make(eval.Correspondences)
			for a, bs := range tr.Cross {
				for b := range bs {
					derived.Add(a, b)
				}
			}
			prf := eval.Weighted(derived, g, freqA, freqB)
			fmt.Printf("  → weighted P=%.2f R=%.2f F=%.2f\n", prf.Precision, prf.Recall, prf.F)
		}
	}
	fmt.Println()
}
