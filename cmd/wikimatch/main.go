// Command wikimatch runs the WikiMatch aligner end to end: it generates
// (or loads) a multilingual corpus, matches entity types and attributes
// across a language pair, and prints the derived correspondences with
// their evaluation against the ground truth. The -stream flag prints
// per-type results as they complete instead of waiting for the whole
// pair.
//
// All matching goes through wire protocol v1 (one typed MatchRequest
// per run). By default the request is served in process; with -remote
// the same request is sent to a running wikimatchd, so the CLI becomes
// a thin protocol client that reuses the daemon's warm artifact cache
// instead of rebuilding dictionaries and LSI models locally. The output
// is identical either way (the daemon must serve the same corpus, i.e.
// the same -scale or -dumps).
//
// The matchall subcommand runs the all-pairs multilingual batch: every
// language pair of the corpus is matched (pivot mode through a hub
// edition by default, or direct all-pairs with -mode direct) and the
// pairwise correspondences are merged into cross-language attribute
// clusters, with transitive Pt–Vi-style derivations, agreement scores
// and conflict reports — evaluated against the generator's gold data
// when the corpus is synthetic. It honours -remote too.
//
// The audit subcommand runs the batch and then compares every
// cross-linked entity's values across the matched attribute clusters,
// printing a ranked inconsistency report (missing values, numeric
// drift, unit mismatches, outright contradictions) with
// confidence-weighted severities. It honours -remote too.
//
// The ingest subcommand streams real dump files — DBpedia
// infobox-properties and interlanguage-links TTL and MediaWiki XML,
// transparently gzip/bzip2-compressed — into a corpus and prints the
// per-edition statistics report with a structured skip-reason summary.
// The language set is entirely data-driven: whatever editions the dump
// directory holds become the corpus. The same ingestion runs implicitly
// wherever -dumps is accepted. With -dry-run it only counts; with
// -store it writes a session snapshot wikimatchd can warm-start from.
//
// The precompute subcommand is the offline half of the offline/online
// split: it builds every artifact for the requested language pairs and
// writes them as one atomic snapshot file that `wikimatchd -store`
// warm-starts from.
//
// Usage:
//
//	wikimatch [-pair pt-en|zh-min-nan:en] [-type filme] [-scale small|full]
//	          [-dumps dir]     ingest dumps (TTL/XML, .gz/.bz2) instead of generating
//	          [-remote URL]    drive a running wikimatchd over protocol v1
//	          [-tsim 0.6] [-tlsi 0.1] [-candidates K] [-exact-score] [-stream]
//
//	wikimatch matchall [-mode pivot|direct] [-hub LANG] [-workers N]
//	          [-scale small|full] [-dumps dir] [-store out.wmsnap]
//	          [-remote URL] [-timings=false]
//	          [-clusters] [-tsim 0.6] [-tlsi 0.1] [-candidates K] [-exact-score]
//
//	wikimatch audit [-mode pivot|direct] [-hub LANG] [-workers N]
//	          [-pair pt-en] [-min-severity 0.5] [-limit 20]
//	          [-scale small|full] [-dumps dir] [-remote URL] [-timings=false]
//
//	wikimatch ingest -dumps dir [-langs en,pt,...] [-workers N]
//	          [-dry-run] [-no-infer] [-progress] [-store corpus.wmsnap]
//
//	wikimatch precompute -store artifacts.wmsnap
//	          [-pairs pt-en,vi-en] [-scale small|full] [-dumps dir]
//	          [-tsim 0.6] [-tlsi 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/eval"
	"repro/internal/ingest"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "precompute" {
		os.Exit(precompute(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "matchall" {
		os.Exit(matchallCmd(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "audit" {
		os.Exit(auditCmd(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "ingest" {
		os.Exit(ingestCmd(os.Args[2:], os.Stdout, os.Stderr))
	}
	os.Exit(matchCmd(os.Args[1:], os.Stdout, os.Stderr))
}

// matchCmd is the default pairwise subcommand.
func matchCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wikimatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pairFlag := fs.String("pair", "pt-en", "language pair, e.g. pt-en (colon form for hyphenated codes: zh-min-nan:en)")
	typeFlag := fs.String("type", "", "match only one source-language type (single-type request)")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with dumps to ingest (DBpedia <lang>-*.ttl[.gz|.bz2], MediaWiki <lang>.xml) instead of generating")
	remote := fs.String("remote", "", "wikimatchd base URL; match there instead of in process")
	tsim := fs.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := fs.Float64("tlsi", 0.1, "correlation threshold TLSI")
	candidates := fs.Int("candidates", 0, "pruned-scoring shortlist width (0 = default, -1 = exhaustive)")
	exactScore := fs.Bool("exact-score", false, "force the exhaustive reference scoring path")
	stream := fs.Bool("stream", false, "print per-type results as each type completes")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *stream && *typeFlag != "" {
		fmt.Fprintln(stderr, "wikimatch: -stream cannot be combined with -type (single-type requests cannot stream)")
		return 2
	}
	req := repro.MatchRequest{Pair: *pairFlag, Type: *typeFlag}
	setMatchOverrides(fs, &req, tsim, tlsi, candidates, exactScore)
	if _, err := repro.ParseLanguagePair(*pairFlag); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	corpus, truth, err := loadCorpus(stdout, *dumpsDir, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	backend, err := newBackend(*remote, corpus)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	stats := corpus.Stats()
	fmt.Fprintf(stdout, "corpus: %v articles, %v infoboxes, %v cross pairs\n\n",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	ctx := context.Background()
	if *stream {
		lines, err := backend.Stream(ctx, req)
		if err != nil {
			fmt.Fprintln(stderr, "stream:", err)
			return 1
		}
		defer lines.Close()
		for lines.Next() {
			line := lines.Line()
			if line.Error != nil {
				fmt.Fprintln(stderr, "stream:", line.Error)
				return 1
			}
			if line.Type != nil {
				printType(stdout, corpus, truth, line.Type, *pairFlag)
			}
		}
		if err := lines.Err(); err != nil {
			fmt.Fprintln(stderr, "stream:", err)
			return 1
		}
		return 0
	}

	resp, err := backend.Match(ctx, req)
	if err != nil {
		fmt.Fprintln(stderr, "match:", err)
		return 1
	}
	fmt.Fprintf(stdout, "matched entity types (%s):\n", resp.Pair)
	for _, tp := range resp.Types {
		fmt.Fprintf(stdout, "  %-28s ~ %s\n", tp[0], tp[1])
	}
	fmt.Fprintln(stdout)
	for i := range resp.Results {
		printType(stdout, corpus, truth, &resp.Results[i], resp.Pair)
	}
	return 0
}

// setMatchOverrides attaches -tsim/-tlsi/-candidates/-exact-score as
// per-request overrides only when the user actually passed the flag: an
// untouched default must not silently override the configuration a
// remote daemon was started with. candidates and exactScore may be nil
// on subcommands that do not expose them.
func setMatchOverrides(fs *flag.FlagSet, req *repro.MatchRequest, tsim, tlsi *float64, candidates *int, exactScore *bool) {
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "tsim":
			req.TSim = tsim
		case "tlsi":
			req.TLSI = tlsi
		case "candidates":
			req.Candidates = candidates
		case "exact-score":
			req.ExactScore = exactScore
		}
	})
}

// newBackend selects the in-process session or the remote protocol
// client.
func newBackend(remote string, corpus *repro.Corpus) (repro.Backend, error) {
	if remote == "" {
		return repro.NewLocalBackend(repro.NewSession(corpus)), nil
	}
	return repro.NewAPIClient(remote)
}

// loadCorpus ingests every recognized dump in the directory when one is
// given — DBpedia TTL and MediaWiki XML, any language set, transparently
// compressed — otherwise generates the synthetic corpus (with its ground
// truth) at the requested scale.
func loadCorpus(w io.Writer, dumpsDir, scale string) (*wiki.Corpus, *synth.GroundTruth, error) {
	if dumpsDir != "" {
		res, err := ingest.Dir(context.Background(), dumpsDir, ingest.Options{})
		if err != nil {
			return nil, nil, err
		}
		tot := res.Totals()
		fmt.Fprintf(w, "ingested %s: %d editions %v, %d files, %d entities (%d skipped units)\n",
			dumpsDir, len(res.PerLang), res.Languages(), tot.Files, tot.Entities, tot.SkippedTotal())
		return res.Corpus, nil, nil
	}
	cfg := synth.SmallConfig()
	if scale == "full" {
		cfg = synth.DefaultConfig()
	}
	corpus, truth, err := synth.Generate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("generate: %w", err)
	}
	return corpus, truth, nil
}

// ingestCmd is the standalone ingestion subcommand: it streams real (or
// corpusgen-fabricated) dump files into a corpus, prints the per-edition
// statistics report with structured skip reasons, and optionally writes
// a session snapshot for wikimatchd -store. With -dry-run it only counts
// — per-language triple/page/skip tallies, no corpus, no artifacts.
func ingestCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wikimatch ingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dumpsDir := fs.String("dumps", "", "directory with dump files (required): <lang>-infobox-properties*.ttl, <lang>-interlanguage-links*.ttl, <lang>.xml, each optionally .gz/.bz2")
	langsFlag := fs.String("langs", "", "comma-separated editions to ingest (default: every edition found)")
	workers := fs.Int("workers", 0, "editions ingesting concurrently (0 = one per edition)")
	dryRun := fs.Bool("dry-run", false, "parse and count only: no corpus, no artifacts")
	noInfer := fs.Bool("no-infer", false, "disable property-profile type inference for untyped entities")
	storePath := fs.String("store", "", "write a session snapshot stamped with the ingested corpus's fingerprint (wikimatchd -store warm-starts from it)")
	progress := fs.Bool("progress", false, "print one line per completed dump file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dumpsDir == "" {
		fmt.Fprintln(stderr, "wikimatch ingest: -dumps is required")
		return 2
	}
	if *dryRun && *storePath != "" {
		fmt.Fprintln(stderr, "wikimatch ingest: -dry-run builds no corpus to -store")
		return 2
	}
	var langs []wiki.Language
	for _, raw := range strings.Split(*langsFlag, ",") {
		if raw = strings.TrimSpace(raw); raw != "" {
			langs = append(langs, wiki.Language(raw))
		}
	}
	opts := ingest.Options{Languages: langs, Workers: *workers, DryRun: *dryRun, NoTypeInference: *noInfer}
	if *progress {
		opts.Progress = func(ev ingest.Progress) {
			fmt.Fprintf(stdout, "  %-10s %s (%s, %d bytes): %d triples, %d pages\n",
				ev.Lang, filepath.Base(ev.Path), ev.Format, ev.Bytes, ev.Triples, ev.Pages)
		}
	}
	res, err := ingest.Dir(context.Background(), *dumpsDir, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printIngestReport(stdout, res, *dryRun)
	if *storePath != "" {
		if err := repro.SaveSessionSnapshot(repro.NewSession(res.Corpus), *storePath); err != nil {
			fmt.Fprintln(stderr, "save snapshot:", err)
			return 1
		}
		info, err := os.Stat(*storePath)
		if err != nil {
			fmt.Fprintln(stderr, "stat snapshot:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nsnapshot %s: %d bytes (corpus fingerprint %x)\n",
			*storePath, info.Size(), res.Corpus.Fingerprint())
	}
	return 0
}

// printIngestReport renders the per-edition ingestion statistics with
// the structured skip-reason summary.
func printIngestReport(w io.Writer, res *ingest.Result, dryRun bool) {
	header := "ingested"
	if dryRun {
		header = "dry run over"
	}
	secs := res.Elapsed.Seconds()
	mbps := 0.0
	if secs > 0 {
		mbps = float64(res.Bytes) / (1 << 20) / secs
	}
	fmt.Fprintf(w, "%s %d editions, %d bytes in %v (%.1f MB/s)\n",
		header, len(res.PerLang), res.Bytes, res.Elapsed.Round(time.Millisecond), mbps)
	for _, lang := range res.Languages() {
		s := res.PerLang[lang]
		fmt.Fprintf(w, "  %-10s %2d files %9d bytes: %d triples (%d attr, %d type, %d template), %d links, %d pages",
			lang, s.Files, s.Bytes, s.Triples, s.AttrTriples, s.TypeTriples, s.TemplateTriples, s.CrossLinks, s.Pages)
		if !dryRun {
			fmt.Fprintf(w, " → %d entities, %d infoboxes (typed: %d template, %d ontology, %d profile)",
				s.Entities, s.Infoboxes, s.TypedByTemplate, s.TypedByOntology, s.TypedByProfile)
		}
		fmt.Fprintln(w)
	}
	tot := res.Totals()
	if tot.SkippedTotal() == 0 {
		fmt.Fprintln(w, "skipped: nothing")
		return
	}
	fmt.Fprintf(w, "skipped %d input units by reason:\n", tot.SkippedTotal())
	for _, reason := range tot.SkipReasons() {
		fmt.Fprintf(w, "  %-18s %d\n", reason, tot.Skipped[reason])
	}
}

// precompute is the offline artifact build: it warms a session for every
// requested language pair and writes the whole artifact cache as one
// snapshot that wikimatchd -store (or repro.RestoreSession) loads in
// milliseconds.
func precompute(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wikimatch precompute", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storePath := fs.String("store", "artifacts.wmsnap", "snapshot file to write (atomic)")
	pairsFlag := fs.String("pairs", "pt-en,vi-en", "comma-separated language pairs to precompute")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with dumps to ingest (DBpedia <lang>-*.ttl[.gz|.bz2], MediaWiki <lang>.xml) instead of generating")
	tsim := fs.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := fs.Float64("tlsi", 0.1, "correlation threshold TLSI")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var pairs []wiki.LanguagePair
	for _, raw := range strings.Split(*pairsFlag, ",") {
		pair, err := repro.ParseLanguagePair(strings.TrimSpace(raw))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pairs = append(pairs, pair)
	}

	corpus, _, err := loadCorpus(stdout, *dumpsDir, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))
	ctx := context.Background()
	for _, pair := range pairs {
		start := time.Now()
		res, err := session.Match(ctx, pair)
		if err != nil {
			fmt.Fprintf(stderr, "precompute %s: %v\n", pair, err)
			return 1
		}
		fmt.Fprintf(stdout, "built %s: %d types in %v\n", pair, len(res.Types), time.Since(start).Round(time.Millisecond))
	}
	start := time.Now()
	if err := repro.SaveSessionSnapshot(session, *storePath); err != nil {
		fmt.Fprintln(stderr, "save snapshot:", err)
		return 1
	}
	info, err := os.Stat(*storePath)
	if err != nil {
		fmt.Fprintln(stderr, "stat snapshot:", err)
		return 1
	}
	cs := session.CacheStats()
	fmt.Fprintf(stdout, "snapshot %s: %d pairs, %d types, %d bytes, written in %v\n",
		*storePath, cs.PairEntries, cs.TypeEntries, info.Size(), time.Since(start).Round(time.Millisecond))
	return 0
}

// matchallCmd runs the all-pairs multilingual batch and prints the
// derived cross-language correspondence clusters, streaming per-pair
// progress as pairs finish. With -store (in-process only), the batch's
// whole artifact cache is flushed as a snapshot afterwards.
func matchallCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wikimatch matchall", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modeFlag := fs.String("mode", "pivot", "pair coverage: pivot (through -hub) or direct (all pairs)")
	hubFlag := fs.String("hub", "", "pivot hub language edition (default: English if present, else first)")
	workers := fs.Int("workers", 0, "concurrent pairs (0 = GOMAXPROCS)")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with dumps to ingest (DBpedia <lang>-*.ttl[.gz|.bz2], MediaWiki <lang>.xml) instead of generating")
	remote := fs.String("remote", "", "wikimatchd base URL; run the batch there instead of in process")
	storePath := fs.String("store", "", "write the batch's artifact snapshot here afterwards (in-process only)")
	clusters := fs.Bool("clusters", false, "print every cluster, not just the summary and samples")
	timings := fs.Bool("timings", true, "print per-pair and total elapsed times")
	tsim := fs.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := fs.Float64("tlsi", 0.1, "correlation threshold TLSI")
	candidates := fs.Int("candidates", 0, "pruned-scoring shortlist width (0 = default, -1 = exhaustive)")
	exactScore := fs.Bool("exact-score", false, "force the exhaustive reference scoring path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *remote != "" && *storePath != "" {
		fmt.Fprintln(stderr, "matchall: -store is not supported with -remote (the artifacts live in the daemon)")
		return 2
	}

	corpus, truth, err := loadCorpus(stdout, *dumpsDir, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "corpus languages: %v\n", corpus.Languages())

	var session *repro.Session
	var backend repro.Backend
	if *remote == "" {
		session = repro.NewSession(corpus)
		backend = repro.NewLocalBackend(session)
	} else if backend, err = repro.NewAPIClient(*remote); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	req := repro.MatchRequest{All: true, Mode: *modeFlag, Hub: *hubFlag, Workers: *workers}
	setMatchOverrides(fs, &req, tsim, tlsi, candidates, exactScore)
	lines, err := backend.Stream(context.Background(), req)
	if err != nil {
		fmt.Fprintln(stderr, "matchall:", err)
		return 1
	}
	defer lines.Close()
	var batch *repro.MatchAllResponse
	for lines.Next() {
		line := lines.Line()
		if o := line.Pair; o != nil {
			if o.Error != "" {
				fmt.Fprintf(stdout, "[%d/%d] %-8s FAILED: %v\n", line.Done, line.Total, o.Pair, o.Error)
				continue
			}
			if *timings {
				fmt.Fprintf(stdout, "[%d/%d] %-8s %3d types %5d correspondences  %v\n",
					line.Done, line.Total, o.Pair, o.Types, o.Correspondences,
					(time.Duration(o.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond))
			} else {
				fmt.Fprintf(stdout, "[%d/%d] %-8s %3d types %5d correspondences\n",
					line.Done, line.Total, o.Pair, o.Types, o.Correspondences)
			}
		}
		if line.FinalAll != nil {
			batch = line.FinalAll
		}
	}
	if err := lines.Err(); err != nil {
		fmt.Fprintln(stderr, "matchall:", err)
		return 1
	}
	if batch == nil {
		fmt.Fprintln(stderr, "matchall: no result")
		return 1
	}

	if err := printBatch(stdout, batch, *clusters, *timings); err != nil {
		fmt.Fprintln(stderr, "matchall:", err)
		return 1
	}
	if truth != nil {
		if err := evalBatch(stdout, corpus, truth, batch); err != nil {
			fmt.Fprintln(stderr, "matchall:", err)
			return 1
		}
	}

	if *storePath != "" {
		if err := repro.SaveSessionSnapshot(session, *storePath); err != nil {
			fmt.Fprintln(stderr, "save snapshot:", err)
			return 1
		}
		cs := session.CacheStats()
		fmt.Fprintf(stdout, "\nsnapshot %s: %d pairs, %d types\n", *storePath, cs.PairEntries, cs.TypeEntries)
	}
	return 0
}

// auditCmd audits cross-edition value consistency: it streams the
// all-pairs matching phase like matchall, then prints the ranked
// inconsistency findings as the comparison emits them, closing with the
// report summary. With -remote the audit runs in the daemon over its
// warm artifact cache; the printed report is identical either way.
func auditCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wikimatch audit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modeFlag := fs.String("mode", "pivot", "pair coverage for the matching phase: pivot (through -hub) or direct")
	hubFlag := fs.String("hub", "", "pivot hub language edition (default: English if present, else first)")
	workers := fs.Int("workers", 0, "concurrent pairs in the matching phase (0 = GOMAXPROCS)")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with dumps to ingest (DBpedia <lang>-*.ttl[.gz|.bz2], MediaWiki <lang>.xml) instead of generating")
	remote := fs.String("remote", "", "wikimatchd base URL; audit there instead of in process")
	pairFlag := fs.String("pair", "", "restrict findings to one language pair (e.g. pt-en or zh-min-nan:en)")
	minSeverity := fs.Float64("min-severity", 0, "drop findings scoring below this severity (0..1)")
	limit := fs.Int("limit", 20, "cap the ranked findings (0 = unlimited)")
	timings := fs.Bool("timings", true, "print per-pair and total elapsed times")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	corpus, _, err := loadCorpus(stdout, *dumpsDir, *scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	backend, err := newBackend(*remote, corpus)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "corpus languages: %v\n", corpus.Languages())

	req := repro.AuditRequest{
		Mode: *modeFlag, Hub: *hubFlag, Workers: *workers,
		Pair: *pairFlag, MinSeverity: *minSeverity, Limit: *limit,
	}
	lines, err := backend.AuditStream(context.Background(), req)
	if err != nil {
		fmt.Fprintln(stderr, "audit:", err)
		return 1
	}
	defer lines.Close()
	var final *repro.AuditResponse
	headed := false
	for lines.Next() {
		line := lines.Line()
		if line.Error != nil {
			fmt.Fprintln(stderr, "audit:", line.Error)
			return 1
		}
		if o := line.Pair; o != nil {
			if o.Error != "" {
				fmt.Fprintf(stdout, "[%d/%d] %-8s FAILED: %v\n", line.Done, line.Total, o.Pair, o.Error)
				continue
			}
			if *timings {
				fmt.Fprintf(stdout, "[%d/%d] %-8s %3d types %5d correspondences  %v\n",
					line.Done, line.Total, o.Pair, o.Types, o.Correspondences,
					(time.Duration(o.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond))
			} else {
				fmt.Fprintf(stdout, "[%d/%d] %-8s %3d types %5d correspondences\n",
					line.Done, line.Total, o.Pair, o.Types, o.Correspondences)
			}
		}
		if f := line.Finding; f != nil {
			if !headed {
				fmt.Fprintf(stdout, "\nranked findings:\n")
				headed = true
			}
			printFinding(stdout, line.Done, f)
		}
		if line.FinalAudit != nil {
			final = line.FinalAudit
		}
	}
	if err := lines.Err(); err != nil {
		fmt.Fprintln(stderr, "audit:", err)
		return 1
	}
	if final == nil {
		fmt.Fprintln(stderr, "audit: no result")
		return 1
	}
	fmt.Fprintf(stdout, "\naudited %d entities over %d clusters: %d value comparisons, %d findings",
		final.Entities, final.Clusters, final.Compared, len(final.Findings))
	if *timings {
		fmt.Fprintf(stdout, ", %v", (time.Duration(final.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond))
	}
	fmt.Fprintln(stdout)
	return 0
}

// printFinding renders one ranked inconsistency with its per-edition
// observations.
func printFinding(w io.Writer, rank int, f *repro.AuditFindingJSON) {
	fmt.Fprintf(w, "%3d. [%.3f] %-14s %s (cluster %d)\n", rank, f.Severity, f.Kind, f.Entity, f.Cluster)
	for _, v := range f.Values {
		norm := ""
		if v.Norm != "" && v.Norm != v.Raw {
			norm = fmt.Sprintf("  → %s", v.Norm)
		}
		fmt.Fprintf(w, "       %s %s = %q%s\n", v.Lang, v.Attr, v.Raw, norm)
	}
}

// printBatch summarizes the clusters: counts by language span, conflict
// totals, and (a sample of) the multilingual clusters themselves.
func printBatch(w io.Writer, batch *repro.MatchAllResponse, all, timings bool) error {
	plan, err := batch.Plan()
	if err != nil {
		return err
	}
	spanCount := map[int]int{}
	derived := 0
	for _, cl := range batch.Clusters {
		spanCount[len(cl.Languages)]++
		for _, corr := range cl.Correspondences {
			if !corr.Direct {
				derived++
			}
		}
	}
	spans := make([]int, 0, len(spanCount))
	for span := range spanCount {
		spans = append(spans, span)
	}
	sort.Ints(spans)
	fmt.Fprintf(w, "\nplan %s → %d clusters (", plan, len(batch.Clusters))
	for i, span := range spans {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%d spanning %d languages", spanCount[span], span)
	}
	fmt.Fprintf(w, "), %d transitive correspondences, %d conflicts", derived, batch.Conflicts)
	if timings {
		fmt.Fprintf(w, ", %v", (time.Duration(batch.ElapsedMS * float64(time.Millisecond))).Round(time.Millisecond))
	}
	fmt.Fprint(w, "\n\n")

	shown := 0
	for _, cl := range batch.Clusters {
		if !all && (len(cl.Languages) < 3 || shown >= 8) {
			continue
		}
		shown++
		fmt.Fprintf(w, "cluster %d (agreement %.2f):\n", cl.ID, cl.Agreement)
		for _, m := range cl.Members {
			fmt.Fprintf(w, "  %s\n", m)
		}
		for _, corr := range cl.Correspondences {
			if !corr.Direct {
				fmt.Fprintf(w, "  ↯ %s ~ %s (transitive, confidence %.2f)\n", corr.A, corr.B, corr.Confidence)
			}
		}
		for _, conflict := range cl.Conflicts {
			fmt.Fprintf(w, "  ✗ %s ~ %s implied via %s but directly rejected\n", conflict.A, conflict.B, conflict.Via)
		}
	}
	if !all && shown > 0 {
		fmt.Fprintf(w, "(showing %d multilingual clusters; -clusters prints all %d)\n", shown, len(batch.Clusters))
	}
	return nil
}

// evalBatch scores the batch's induced per-pair correspondences —
// including purely transitive pairs — against the generator's gold data.
func evalBatch(w io.Writer, corpus *wiki.Corpus, truth *synth.GroundTruth, batch *repro.MatchAllResponse) error {
	plan, err := batch.Plan()
	if err != nil {
		return err
	}
	langs := map[wiki.Language]bool{}
	for _, pair := range plan.Pairs {
		langs[pair.A], langs[pair.B] = true, true
	}
	var all []wiki.Language
	for l := range langs {
		all = append(all, l)
	}
	fmt.Fprintf(w, "\ncluster-induced correspondences vs gold (macro):\n")
	for _, pair := range wiki.AllPairs(all, plan.Hub) {
		induced := batch.Induced(pair)
		var rows []eval.PRF
		for tp, derivedSet := range induced {
			canon, ok := truth.CanonType(pair.A, tp[0])
			if !ok {
				continue
			}
			tt := truth.Types[canon]
			freqA := eval.LanguageAttributeFrequencies(corpus, pair.A, tp[0])
			freqB := eval.LanguageAttributeFrequencies(corpus, pair.B, tp[1])
			gold := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
			if gold.Pairs() == 0 {
				continue
			}
			rows = append(rows, eval.Macro(derivedSet, gold))
		}
		if len(rows) == 0 {
			fmt.Fprintf(w, "  %-8s (nothing to score)\n", pair)
			continue
		}
		avg := eval.Average(rows)
		tag := ""
		if !plan.Contains(pair.A, pair.B) {
			tag = "  (transitive only)"
		}
		fmt.Fprintf(w, "  %-8s P=%.3f R=%.3f F=%.3f over %d types%s\n",
			pair, avg.Precision, avg.Recall, avg.F, len(rows), tag)
	}
	return nil
}

// printType renders one type's correspondences and, when ground truth is
// available, its weighted scores. It works entirely from the wire DTO,
// so local and remote runs print byte-identical output.
func printType(w io.Writer, corpus *wiki.Corpus, truth *synth.GroundTruth, tr *repro.TypeMatchResultJSON, pairRaw string) {
	fmt.Fprintf(w, "== %s ~ %s\n", tr.TypeA, tr.TypeB)
	for _, c := range tr.Correspondences {
		fmt.Fprintf(w, "  %-30s ~ %s\n", c.A, c.B)
	}
	if truth != nil {
		pair, err := repro.ParseLanguagePair(pairRaw)
		if err == nil {
			if canon, ok := truth.CanonType(pair.A, tr.TypeA); ok {
				tt := truth.Types[canon]
				freqA, freqB := eval.AttributeFrequencies(corpus, pair, tr.TypeA, tr.TypeB)
				g := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
				derived := make(eval.Correspondences)
				for _, c := range tr.Correspondences {
					derived.Add(c.A, c.B)
				}
				prf := eval.Weighted(derived, g, freqA, freqB)
				fmt.Fprintf(w, "  → weighted P=%.2f R=%.2f F=%.2f\n", prf.Precision, prf.Recall, prf.F)
			}
		}
	}
	fmt.Fprintln(w)
}
