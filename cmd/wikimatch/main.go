// Command wikimatch runs the WikiMatch aligner end to end: it generates
// (or loads) a multilingual corpus, matches entity types and attributes
// across a language pair, and prints the derived correspondences with
// their evaluation against the ground truth.
//
// Usage:
//
//	wikimatch [-pair pt-en|vi-en] [-type filme] [-scale small|full]
//	          [-dumps dir]     load XML dumps (<lang>.xml) instead of generating
//	          [-tsim 0.6] [-tlsi 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dump"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	pairFlag := flag.String("pair", "pt-en", "language pair: pt-en or vi-en")
	typeFlag := flag.String("type", "", "restrict output to one source-language type name")
	scale := flag.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := flag.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	tsim := flag.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := flag.Float64("tlsi", 0.1, "correlation threshold TLSI")
	flag.Parse()

	var pair wiki.LanguagePair
	switch *pairFlag {
	case "pt-en":
		pair = wiki.PtEn
	case "vi-en":
		pair = wiki.VnEn
	default:
		fmt.Fprintf(os.Stderr, "unknown pair %q\n", *pairFlag)
		os.Exit(2)
	}

	var corpus *wiki.Corpus
	var truth *synth.GroundTruth
	if *dumpsDir != "" {
		corpus = wiki.NewCorpus()
		for _, lang := range []wiki.Language{wiki.English, wiki.Portuguese, wiki.Vietnamese} {
			path := filepath.Join(*dumpsDir, string(lang)+".xml")
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "open dump:", err)
				os.Exit(1)
			}
			res, err := dump.LoadCorpus(corpus, f, lang)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "load dump:", err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s: %d pages (%d skipped, %d errors)\n",
				path, res.Pages, res.Skipped, len(res.Errors))
		}
	} else {
		cfg := synth.SmallConfig()
		if *scale == "full" {
			cfg = synth.DefaultConfig()
		}
		var err error
		corpus, truth, err = synth.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "generate:", err)
			os.Exit(1)
		}
	}

	stats := corpus.Stats()
	fmt.Printf("corpus: %v articles, %v infoboxes, %v cross pairs\n\n",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	mcfg := core.DefaultConfig()
	mcfg.TSim, mcfg.TLSI = *tsim, *tlsi
	res := core.NewMatcher(mcfg).Match(corpus, pair)

	fmt.Printf("matched entity types (%s):\n", pair)
	for _, tp := range res.Types {
		fmt.Printf("  %-28s ~ %s\n", tp[0], tp[1])
	}
	fmt.Println()

	for _, tp := range res.Types {
		if *typeFlag != "" && tp[0] != *typeFlag {
			continue
		}
		tr := res.PerType[tp]
		fmt.Printf("== %s ~ %s\n", tp[0], tp[1])
		for _, p := range tr.CrossPairsSorted() {
			fmt.Printf("  %-30s ~ %s\n", p[0], p[1])
		}
		if truth != nil {
			if canon, ok := truth.CanonType(pair.A, tp[0]); ok {
				tt := truth.Types[canon]
				freqA, freqB := eval.AttributeFrequencies(corpus, pair, tp[0], tp[1])
				g := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
				derived := make(eval.Correspondences)
				for a, bs := range tr.Cross {
					for b := range bs {
						derived.Add(a, b)
					}
				}
				prf := eval.Weighted(derived, g, freqA, freqB)
				fmt.Printf("  → weighted P=%.2f R=%.2f F=%.2f\n", prf.Precision, prf.Recall, prf.F)
			}
		}
		fmt.Println()
	}
}
