// Command wikimatch runs the WikiMatch aligner end to end: it generates
// (or loads) a multilingual corpus, opens a matching session, matches
// entity types and attributes across a language pair, and prints the
// derived correspondences with their evaluation against the ground
// truth. The -stream flag prints per-type results as they complete
// instead of waiting for the whole pair.
//
// The matchall subcommand runs the all-pairs multilingual batch: every
// language pair of the corpus is matched (pivot mode through a hub
// edition by default, or direct all-pairs with -mode direct) and the
// pairwise correspondences are merged into cross-language attribute
// clusters, with transitive Pt–Vi-style derivations, agreement scores
// and conflict reports — evaluated against the generator's gold data
// when the corpus is synthetic.
//
// The precompute subcommand is the offline half of the offline/online
// split: it builds every artifact for the requested language pairs and
// writes them as one atomic snapshot file that `wikimatchd -store`
// warm-starts from.
//
// Usage:
//
//	wikimatch [-pair pt-en|vi-en] [-type filme] [-scale small|full]
//	          [-dumps dir]     load XML dumps (<lang>.xml) instead of generating
//	          [-tsim 0.6] [-tlsi 0.1] [-stream]
//
//	wikimatch matchall [-mode pivot|direct] [-hub en] [-workers N]
//	          [-scale small|full] [-dumps dir] [-store out.wmsnap]
//	          [-clusters] [-tsim 0.6] [-tlsi 0.1]
//
//	wikimatch precompute -store artifacts.wmsnap
//	          [-pairs pt-en,vi-en] [-scale small|full] [-dumps dir]
//	          [-tsim 0.6] [-tlsi 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/dump"
	"repro/internal/eval"
	"repro/internal/synth"
	"repro/internal/wiki"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "precompute" {
		precompute(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "matchall" {
		matchall(os.Args[2:])
		return
	}
	pairFlag := flag.String("pair", "pt-en", "language pair: pt-en or vi-en")
	typeFlag := flag.String("type", "", "restrict output to one source-language type name")
	scale := flag.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := flag.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	tsim := flag.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := flag.Float64("tlsi", 0.1, "correlation threshold TLSI")
	stream := flag.Bool("stream", false, "print per-type results as each type completes")
	flag.Parse()

	pair, err := repro.ParseLanguagePair(*pairFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	corpus, truth := loadCorpus(*dumpsDir, *scale)

	stats := corpus.Stats()
	fmt.Printf("corpus: %v articles, %v infoboxes, %v cross pairs\n\n",
		stats.Articles, stats.Infoboxes, stats.CrossPairs)

	ctx := context.Background()
	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))

	types, err := session.Types(ctx, pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "match types:", err)
		os.Exit(1)
	}
	fmt.Printf("matched entity types (%s):\n", pair)
	for _, tp := range types {
		fmt.Printf("  %-28s ~ %s\n", tp[0], tp[1])
	}
	fmt.Println()

	if *stream {
		updates, err := session.MatchStream(ctx, pair)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		for u := range updates {
			if u.Err != nil {
				fmt.Fprintln(os.Stderr, "stream:", u.Err)
				os.Exit(1)
			}
			if *typeFlag != "" && u.TypeA != *typeFlag {
				continue
			}
			printType(corpus, truth, pair, u.TypeA, u.TypeB, u.Result)
		}
		return
	}

	res, err := session.Match(ctx, pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "match:", err)
		os.Exit(1)
	}
	for _, tp := range res.Types {
		if *typeFlag != "" && tp[0] != *typeFlag {
			continue
		}
		printType(corpus, truth, pair, tp[0], tp[1], res.PerType[tp])
	}
}

// loadCorpus builds the corpus from XML dumps when a directory is given,
// otherwise generates the synthetic corpus (with its ground truth) at
// the requested scale. Failures are fatal.
func loadCorpus(dumpsDir, scale string) (*wiki.Corpus, *synth.GroundTruth) {
	if dumpsDir != "" {
		corpus := wiki.NewCorpus()
		loaded := 0
		for _, lang := range []wiki.Language{wiki.English, wiki.Portuguese, wiki.Vietnamese} {
			path := filepath.Join(dumpsDir, string(lang)+".xml")
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "open dump:", err)
				os.Exit(1)
			}
			res, err := dump.LoadCorpus(corpus, f, lang)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "load dump:", err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s: %d pages (%d skipped, %d errors)\n",
				path, res.Pages, res.Skipped, len(res.Errors))
			loaded++
		}
		if loaded == 0 {
			fmt.Fprintf(os.Stderr, "no <lang>.xml dumps found in %s\n", dumpsDir)
			os.Exit(1)
		}
		return corpus, nil
	}
	cfg := synth.SmallConfig()
	if scale == "full" {
		cfg = synth.DefaultConfig()
	}
	corpus, truth, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generate:", err)
		os.Exit(1)
	}
	return corpus, truth
}

// precompute is the offline artifact build: it warms a session for every
// requested language pair and writes the whole artifact cache as one
// snapshot that wikimatchd -store (or repro.RestoreSession) loads in
// milliseconds.
func precompute(args []string) {
	fs := flag.NewFlagSet("wikimatch precompute", flag.ExitOnError)
	storePath := fs.String("store", "artifacts.wmsnap", "snapshot file to write (atomic)")
	pairsFlag := fs.String("pairs", "pt-en,vi-en", "comma-separated language pairs to precompute")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	tsim := fs.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := fs.Float64("tlsi", 0.1, "correlation threshold TLSI")
	fs.Parse(args)

	var pairs []wiki.LanguagePair
	for _, raw := range strings.Split(*pairsFlag, ",") {
		pair, err := repro.ParseLanguagePair(strings.TrimSpace(raw))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pairs = append(pairs, pair)
	}

	corpus, _ := loadCorpus(*dumpsDir, *scale)
	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))
	ctx := context.Background()
	for _, pair := range pairs {
		start := time.Now()
		res, err := session.Match(ctx, pair)
		if err != nil {
			fmt.Fprintf(os.Stderr, "precompute %s: %v\n", pair, err)
			os.Exit(1)
		}
		fmt.Printf("built %s: %d types in %v\n", pair, len(res.Types), time.Since(start).Round(time.Millisecond))
	}
	start := time.Now()
	if err := repro.SaveSessionSnapshot(session, *storePath); err != nil {
		fmt.Fprintln(os.Stderr, "save snapshot:", err)
		os.Exit(1)
	}
	info, err := os.Stat(*storePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stat snapshot:", err)
		os.Exit(1)
	}
	cs := session.CacheStats()
	fmt.Printf("snapshot %s: %d pairs, %d types, %d bytes, written in %v\n",
		*storePath, cs.PairEntries, cs.TypeEntries, info.Size(), time.Since(start).Round(time.Millisecond))
}

// matchall runs the all-pairs multilingual batch and prints the derived
// cross-language correspondence clusters, streaming per-pair progress as
// the bounded worker pool finishes pairs. With -store, the batch's whole
// artifact cache is flushed as a snapshot afterwards — `matchall -store`
// is precompute for every pair at once.
func matchall(args []string) {
	fs := flag.NewFlagSet("wikimatch matchall", flag.ExitOnError)
	modeFlag := fs.String("mode", "pivot", "pair coverage: pivot (through -hub) or direct (all pairs)")
	hubFlag := fs.String("hub", "en", "pivot hub language edition")
	workers := fs.Int("workers", 0, "concurrent pairs (0 = GOMAXPROCS)")
	scale := fs.String("scale", "small", "generated corpus scale: small or full")
	dumpsDir := fs.String("dumps", "", "directory with <lang>.xml dumps to load instead of generating")
	storePath := fs.String("store", "", "write the batch's artifact snapshot here afterwards")
	clusters := fs.Bool("clusters", false, "print every cluster, not just the summary and samples")
	tsim := fs.Float64("tsim", 0.6, "certain-match threshold Tsim")
	tlsi := fs.Float64("tlsi", 0.1, "correlation threshold TLSI")
	fs.Parse(args)

	mode, err := repro.ParseMultiMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	corpus, truth := loadCorpus(*dumpsDir, *scale)
	langs := corpus.Languages()
	fmt.Printf("corpus languages: %v\n", langs)

	session := repro.NewSession(corpus, repro.WithTSim(*tsim), repro.WithTLSI(*tlsi))
	ctx := context.Background()
	updates, err := session.MatchAllStream(ctx, repro.MultiOptions{
		Mode: mode, Hub: wiki.Language(*hubFlag), Workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "matchall:", err)
		os.Exit(1)
	}
	var batch *repro.BatchResult
	for u := range updates {
		if u.Outcome != nil {
			o := u.Outcome
			if o.Err != nil {
				fmt.Printf("[%d/%d] %-8s FAILED: %v\n", u.Done, u.Total, o.Pair, o.Err)
				continue
			}
			fmt.Printf("[%d/%d] %-8s %3d types %5d correspondences  %v\n",
				u.Done, u.Total, o.Pair, len(o.Result.Types), o.Correspondences(),
				o.Elapsed.Round(time.Millisecond))
		}
		if u.Final != nil {
			batch = u.Final
		}
	}
	if batch == nil {
		fmt.Fprintln(os.Stderr, "matchall: no result")
		os.Exit(1)
	}

	printBatch(batch, *clusters)
	if truth != nil {
		evalBatch(corpus, truth, batch)
	}

	if *storePath != "" {
		if err := repro.SaveSessionSnapshot(session, *storePath); err != nil {
			fmt.Fprintln(os.Stderr, "save snapshot:", err)
			os.Exit(1)
		}
		cs := session.CacheStats()
		fmt.Printf("\nsnapshot %s: %d pairs, %d types\n", *storePath, cs.PairEntries, cs.TypeEntries)
	}
}

// printBatch summarizes the clusters: counts by language span, conflict
// totals, and (a sample of) the multilingual clusters themselves.
func printBatch(batch *repro.BatchResult, all bool) {
	spanCount := map[int]int{}
	conflicts, derived := 0, 0
	for _, cl := range batch.Clusters {
		spanCount[len(cl.Languages)]++
		conflicts += len(cl.Conflicts)
		for _, corr := range cl.Correspondences {
			if !corr.Direct {
				derived++
			}
		}
	}
	spans := make([]int, 0, len(spanCount))
	for span := range spanCount {
		spans = append(spans, span)
	}
	sort.Ints(spans)
	fmt.Printf("\nplan %s → %d clusters (", batch.Plan, len(batch.Clusters))
	for i, span := range spans {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%d spanning %d languages", spanCount[span], span)
	}
	fmt.Printf("), %d transitive correspondences, %d conflicts, %v\n\n", derived, conflicts, batch.Elapsed.Round(time.Millisecond))

	shown := 0
	for _, cl := range batch.Clusters {
		if !all && (len(cl.Languages) < 3 || shown >= 8) {
			continue
		}
		shown++
		fmt.Printf("cluster %d (agreement %.2f):\n", cl.ID, cl.Agreement)
		for _, m := range cl.Members {
			fmt.Printf("  %s\n", m)
		}
		for _, corr := range cl.Correspondences {
			if !corr.Direct {
				fmt.Printf("  ↯ %s ~ %s (transitive, confidence %.2f)\n", corr.A, corr.B, corr.Confidence)
			}
		}
		for _, conflict := range cl.Conflicts {
			fmt.Printf("  ✗ %s ~ %s implied via %s but directly rejected\n", conflict.A, conflict.B, conflict.Via)
		}
	}
	if !all && shown > 0 {
		fmt.Printf("(showing %d multilingual clusters; -clusters prints all %d)\n", shown, len(batch.Clusters))
	}
}

// evalBatch scores the batch's induced per-pair correspondences —
// including purely transitive pairs — against the generator's gold data.
func evalBatch(corpus *wiki.Corpus, truth *synth.GroundTruth, batch *repro.BatchResult) {
	langs := map[wiki.Language]bool{}
	for _, pair := range batch.Plan.Pairs {
		langs[pair.A], langs[pair.B] = true, true
	}
	var all []wiki.Language
	for l := range langs {
		all = append(all, l)
	}
	fmt.Printf("\ncluster-induced correspondences vs gold (macro):\n")
	for _, pair := range wiki.AllPairs(all, batch.Plan.Hub) {
		induced := batch.Induced(pair)
		var rows []eval.PRF
		for tp, derivedSet := range induced {
			canon, ok := truth.CanonType(pair.A, tp[0])
			if !ok {
				continue
			}
			tt := truth.Types[canon]
			freqA := eval.LanguageAttributeFrequencies(corpus, pair.A, tp[0])
			freqB := eval.LanguageAttributeFrequencies(corpus, pair.B, tp[1])
			gold := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
			if gold.Pairs() == 0 {
				continue
			}
			rows = append(rows, eval.Macro(derivedSet, gold))
		}
		if len(rows) == 0 {
			fmt.Printf("  %-8s (nothing to score)\n", pair)
			continue
		}
		avg := eval.Average(rows)
		tag := ""
		if !batch.Plan.Contains(pair.A, pair.B) {
			tag = "  (transitive only)"
		}
		fmt.Printf("  %-8s P=%.3f R=%.3f F=%.3f over %d types%s\n",
			pair, avg.Precision, avg.Recall, avg.F, len(rows), tag)
	}
}

// printType renders one type's correspondences and, when ground truth is
// available, its weighted scores.
func printType(corpus *wiki.Corpus, truth *synth.GroundTruth, pair wiki.LanguagePair, typeA, typeB string, tr *repro.TypeMatchResult) {
	fmt.Printf("== %s ~ %s\n", typeA, typeB)
	for _, p := range tr.CrossPairsSorted() {
		fmt.Printf("  %-30s ~ %s\n", p[0], p[1])
	}
	if truth != nil {
		if canon, ok := truth.CanonType(pair.A, typeA); ok {
			tt := truth.Types[canon]
			freqA, freqB := eval.AttributeFrequencies(corpus, pair, typeA, typeB)
			g := eval.TruthPairs(freqA, freqB, pair, tt.Correct)
			derived := make(eval.Correspondences)
			for a, bs := range tr.Cross {
				for b := range bs {
					derived.Add(a, b)
				}
			}
			prf := eval.Weighted(derived, g, freqA, freqB)
			fmt.Printf("  → weighted P=%.2f R=%.2f F=%.2f\n", prf.Precision, prf.Recall, prf.F)
		}
	}
	fmt.Println()
}
