package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// startDaemon serves the same small synthetic corpus the CLI generates,
// exactly as wikimatchd would.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repro.NewHTTPHandler(repro.NewSession(corpus)))
	t.Cleanup(srv.Close)
	return srv
}

// runCmd executes one subcommand and returns its stdout.
func runCmd(t *testing.T, cmd func([]string, *bytes.Buffer) int, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if code := cmd(args, &out); code != 0 {
		t.Fatalf("wikimatch %v exited %d\n%s", args, code, out.String())
	}
	return out.String()
}

// TestRemoteMatchEquivalence asserts the round-trip contract of the
// client SDK: `wikimatch -remote` output is byte-identical to the
// in-process session path, for a full pair match and a single-type
// request — the CLI prints from the same wire DTOs either way, so any
// drift between the HTTP layer and the in-process executor shows up
// here as a diff.
func TestRemoteMatchEquivalence(t *testing.T) {
	srv := startDaemon(t)
	match := func(args []string, out *bytes.Buffer) int {
		var errBuf bytes.Buffer
		code := matchCmd(args, out, &errBuf)
		if errBuf.Len() > 0 {
			t.Logf("stderr: %s", errBuf.String())
		}
		return code
	}

	for _, c := range []struct {
		name string
		args []string
		want string
	}{
		{"full pair pt-en", []string{"-pair", "pt-en"}, "== filme ~ film"},
		{"full pair vi-en", []string{"-pair", "vi-en"}, "== phim ~ film"},
		{"single type", []string{"-pair", "pt-en", "-type", "filme"}, "== filme ~ film"},
		{"threshold override", []string{"-pair", "pt-en", "-type", "filme", "-tsim", "0.8"}, "== filme ~ film"},
	} {
		t.Run(c.name, func(t *testing.T) {
			local := runCmd(t, match, c.args)
			remote := runCmd(t, match, append([]string{"-remote", srv.URL}, c.args...))
			if local != remote {
				t.Errorf("local and remote output differ\n--- local ---\n%s\n--- remote ---\n%s",
					firstDiff(local, remote), firstDiff(remote, local))
			}
			if !strings.Contains(local, c.want) {
				t.Errorf("output lost the %q alignment:\n%s", c.want, local)
			}
		})
	}
}

// TestRemoteMatchAllEquivalence is the all-pairs twin: the streamed
// batch (progress lines, cluster summary, gold evaluation) must print
// byte-identically through the local backend and the NDJSON wire.
// Timings are suppressed and workers pinned so completion order is
// deterministic.
func TestRemoteMatchAllEquivalence(t *testing.T) {
	srv := startDaemon(t)
	matchall := func(args []string, out *bytes.Buffer) int {
		var errBuf bytes.Buffer
		code := matchallCmd(args, out, &errBuf)
		if errBuf.Len() > 0 {
			t.Logf("stderr: %s", errBuf.String())
		}
		return code
	}
	base := []string{"-timings=false", "-workers", "1"}
	local := runCmd(t, matchall, base)
	remote := runCmd(t, matchall, append([]string{"-remote", srv.URL}, base...))
	if local != remote {
		t.Errorf("local and remote matchall output differ\n--- local ---\n%s\n--- remote ---\n%s",
			firstDiff(local, remote), firstDiff(remote, local))
	}
	for _, want := range []string{"plan pivot(en): pt-en vi-en", "cluster-induced correspondences vs gold", "pt-vi"} {
		if !strings.Contains(local, want) {
			t.Errorf("matchall output missing %q:\n%s", want, local)
		}
	}
}

// TestRemoteFlagValidation covers the CLI-level guard rails around
// -remote.
func TestRemoteFlagValidation(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := matchallCmd([]string{"-remote", "http://localhost:1", "-store", "x.wmsnap"}, &out, &errBuf); code != 2 {
		t.Errorf("-remote with -store exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "-store is not supported with -remote") {
		t.Errorf("stderr: %s", errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := matchCmd([]string{"-pair", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("bad pair exited %d, want 2", code)
	}
}

// firstDiff trims two strings to the neighbourhood of their first
// difference, keeping failure output readable.
func firstDiff(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 200
	if start < 0 {
		start = 0
	}
	end := i + 200
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}

// TestStreamTypeRejected: -stream with -type must fail loudly, not
// silently ignore the stream flag.
func TestStreamTypeRejected(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := matchCmd([]string{"-stream", "-type", "filme"}, &out, &errBuf); code != 2 {
		t.Errorf("-stream -type exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "cannot be combined") {
		t.Errorf("stderr: %s", errBuf.String())
	}
}
