// Command corpusgen writes the synthetic multilingual Wikipedia to disk
// as MediaWiki XML dumps (one per language) plus a JSON ground-truth
// file, so the pipeline can be exercised from bytes exactly as it would
// be on real dumps.
//
// Usage:
//
//	corpusgen [-out dir] [-scale small|full] [-seed N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dump"
	"repro/internal/synth"
)

// truthJSON is the serialized ground-truth format: per canonical type,
// the surface names per language with their canonical attribute ids.
type truthJSON struct {
	Types     map[string]map[string]map[string][]string `json:"types"`     // type → lang → surface → canons
	TypeNames map[string]map[string]string              `json:"typeNames"` // lang → localized → canon
}

func main() {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.String("scale", "small", "small or full")
	seed := flag.Int64("seed", 0, "override generator seed (0 keeps the default)")
	flag.Parse()

	cfg := synth.SmallConfig()
	if *scale == "full" {
		cfg = synth.DefaultConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	corpus, truth, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generate:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, lang := range corpus.Languages() {
		path := filepath.Join(*out, string(lang)+".xml")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := dump.WriteCorpus(f, corpus, lang); err != nil {
			fmt.Fprintln(os.Stderr, "write dump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d articles)\n", path, corpus.LenLang(lang))
	}

	tj := truthJSON{
		Types:     make(map[string]map[string]map[string][]string),
		TypeNames: make(map[string]map[string]string),
	}
	for canon, tt := range truth.Types {
		tj.Types[canon] = make(map[string]map[string][]string)
		for lang, names := range tt.CanonsOf {
			m := make(map[string][]string, len(names))
			for name, canons := range names {
				m[name] = canons
			}
			tj.Types[canon][string(lang)] = m
		}
	}
	for lang, names := range truth.TypeNameToCanon {
		m := make(map[string]string, len(names))
		for local, canon := range names {
			m[local] = canon
		}
		tj.TypeNames[string(lang)] = m
	}
	path := filepath.Join(*out, "ground_truth.json")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tj); err != nil {
		fmt.Fprintln(os.Stderr, "write truth:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
