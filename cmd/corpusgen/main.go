// Command corpusgen writes a synthetic multilingual Wikipedia to disk
// in real dump formats, so the pipeline can be exercised from bytes
// exactly as it would be on real dumps.
//
// Two generators are available. The default (en/pt/vi, -scale) is the
// linguistically rich corpus for accuracy experiments; it ships with a
// JSON ground-truth file. With -editions the multi-edition fixture is
// generated instead: ten or more language editions (hyphenated
// long-tail codes included) in a star topology around a hub, with
// controllable cross-link density — the pivot planner's stress case,
// where most pairs are reachable only transitively.
//
// Either corpus can be written as MediaWiki XML page dumps (-format
// xml, one <lang>.xml per edition) or as DBpedia-style N-Triples dumps
// (-format ttl, <lang>-infobox-properties.ttl plus
// <lang>-interlanguage-links.ttl per edition). -gzip compresses every
// dump file, exercising ingestion's transparent decoding.
//
// Usage:
//
//	corpusgen [-out dir] [-format xml|ttl] [-gzip] [-seed N]
//	          [-scale small|full]
//	          [-editions] [-langs en,de,...] [-hub en] [-entities N]
//	          [-hub-link-pct 95] [-nonhub-link-pct 0] [-template-pct 100]
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dump"
	"repro/internal/ingest"
	"repro/internal/multi"
	"repro/internal/synth"
	"repro/internal/wiki"
)

// truthJSON is the serialized ground-truth format: per canonical type,
// the surface names per language with their canonical attribute ids.
type truthJSON struct {
	Types     map[string]map[string]map[string][]string `json:"types"`     // type → lang → surface → canons
	TypeNames map[string]map[string]string              `json:"typeNames"` // lang → localized → canon
}

func main() {
	out := flag.String("out", "corpus", "output directory")
	format := flag.String("format", "xml", "dump format: xml (MediaWiki pages) or ttl (DBpedia N-Triples)")
	gzipFlag := flag.Bool("gzip", false, "gzip-compress every dump file")
	scale := flag.String("scale", "small", "default corpus scale: small or full")
	seed := flag.Int64("seed", 0, "override generator seed (0 keeps the default)")
	editions := flag.Bool("editions", false, "generate the multi-edition star fixture instead of the en/pt/vi corpus")
	langsFlag := flag.String("langs", "", "editions mode: comma-separated language codes (default: the 12-edition set)")
	hub := flag.String("hub", "", "editions mode: hub edition every other edition links to (default: en, or the first language)")
	entities := flag.Int("entities", 0, "editions mode: entities per type (0 keeps the default)")
	hubLinkPct := flag.Int("hub-link-pct", -1, "editions mode: % chance a non-hub article links to the hub (-1 keeps the default)")
	nonHubLinkPct := flag.Int("nonhub-link-pct", -1, "editions mode: % chance two non-hub articles are linked; 0 makes every non-hub pair transitive-only (-1 keeps the default)")
	templatePct := flag.Int("template-pct", -1, "editions mode: % of articles naming their typed infobox template (-1 keeps the default)")
	flag.Parse()

	if *format != "xml" && *format != "ttl" {
		fmt.Fprintf(os.Stderr, "corpusgen: unknown -format %q (want xml or ttl)\n", *format)
		os.Exit(2)
	}
	if err := run(*out, *format, *gzipFlag, *scale, *seed, *editions,
		*langsFlag, *hub, *entities, *hubLinkPct, *nonHubLinkPct, *templatePct); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(out, format string, gz bool, scale string, seed int64, editions bool,
	langsFlag, hub string, entities, hubLinkPct, nonHubLinkPct, templatePct int) error {
	var (
		corpus *wiki.Corpus
		truth  *synth.GroundTruth
		err    error
	)
	if editions {
		cfg := synth.DefaultEditions()
		if langsFlag != "" {
			cfg.Languages = nil
			for _, raw := range strings.Split(langsFlag, ",") {
				if raw = strings.TrimSpace(raw); raw != "" {
					cfg.Languages = append(cfg.Languages, wiki.Language(raw))
				}
			}
			cfg.Hub = ""
		}
		if hub != "" {
			cfg.Hub = wiki.Language(hub)
		}
		if cfg.Hub == "" {
			cfg.Hub = multi.DefaultHub(cfg.Languages)
		}
		if entities > 0 {
			cfg.EntitiesPerType = entities
		}
		if hubLinkPct >= 0 {
			cfg.HubLinkPct = hubLinkPct
		}
		if nonHubLinkPct >= 0 {
			cfg.NonHubLinkPct = nonHubLinkPct
		}
		if templatePct >= 0 {
			cfg.TemplatePct = templatePct
		}
		if seed != 0 {
			cfg.Seed = uint64(seed)
		}
		corpus, _, err = synth.Editions(cfg)
	} else {
		cfg := synth.SmallConfig()
		if scale == "full" {
			cfg = synth.DefaultConfig()
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		corpus, truth, err = synth.Generate(cfg)
	}
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	for _, lang := range corpus.Languages() {
		if format == "xml" {
			if err := writeDump(out, string(lang)+".xml", gz, func(w io.Writer) error {
				return dump.WriteCorpus(w, corpus, lang)
			}); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d articles)\n", dumpName(out, string(lang)+".xml", gz), corpus.LenLang(lang))
			continue
		}
		if err := writeDump(out, string(lang)+"-infobox-properties.ttl", gz, func(w io.Writer) error {
			return ingest.WriteProperties(w, corpus, lang)
		}); err != nil {
			return err
		}
		if err := writeDump(out, string(lang)+"-interlanguage-links.ttl", gz, func(w io.Writer) error {
			return ingest.WriteLinks(w, corpus, lang)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s + %s (%d articles)\n",
			dumpName(out, string(lang)+"-infobox-properties.ttl", gz),
			dumpName(out, string(lang)+"-interlanguage-links.ttl", gz),
			corpus.LenLang(lang))
	}

	if truth != nil {
		if err := writeTruth(out, truth); err != nil {
			return err
		}
	}
	fmt.Printf("corpus fingerprint %x\n", corpus.Fingerprint())
	return nil
}

func dumpName(dir, name string, gz bool) string {
	if gz {
		name += ".gz"
	}
	return filepath.Join(dir, name)
}

// writeDump writes one dump file, optionally gzip-compressed.
func writeDump(dir, name string, gz bool, render func(io.Writer) error) error {
	f, err := os.Create(dumpName(dir, name, gz))
	if err != nil {
		return err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(f)
		w = zw
	}
	if err := render(w); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", name, err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func writeTruth(out string, truth *synth.GroundTruth) error {
	tj := truthJSON{
		Types:     make(map[string]map[string]map[string][]string),
		TypeNames: make(map[string]map[string]string),
	}
	for canon, tt := range truth.Types {
		tj.Types[canon] = make(map[string]map[string][]string)
		for lang, names := range tt.CanonsOf {
			m := make(map[string][]string, len(names))
			for name, canons := range names {
				m[name] = canons
			}
			tj.Types[canon][string(lang)] = m
		}
	}
	for lang, names := range truth.TypeNameToCanon {
		m := make(map[string]string, len(names))
		for local, canon := range names {
			m[local] = canon
		}
		tj.TypeNames[string(lang)] = m
	}
	path := filepath.Join(out, "ground_truth.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tj); err != nil {
		f.Close()
		return fmt.Errorf("write truth: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
