package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synth"
	"repro/internal/wiki"
)

// TestDumpsToMatchingIntegration drives the on-disk pipeline end to end:
// generate → write XML dumps to disk → reload through the streaming
// parser → run WikiMatch — and checks the result is identical to the
// in-memory run.
func TestDumpsToMatchingIntegration(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	dir := t.TempDir()
	for _, lang := range corpus.Languages() {
		f, err := os.Create(filepath.Join(dir, string(lang)+".xml"))
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteDump(f, corpus, lang); err != nil {
			t.Fatalf("WriteDump(%s): %v", lang, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	reloaded := NewCorpus()
	for _, lang := range corpus.Languages() {
		f, err := os.Open(filepath.Join(dir, string(lang)+".xml"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := LoadDump(reloaded, f, lang)
		f.Close()
		if err != nil {
			t.Fatalf("LoadDump(%s): %v", lang, err)
		}
		if len(res.Errors) > 0 {
			t.Fatalf("LoadDump(%s): %d errors, first: %v", lang, len(res.Errors), res.Errors[0])
		}
	}

	orig := Match(corpus, PtEn)
	again := Match(reloaded, PtEn)
	if len(orig.Types) != len(again.Types) {
		t.Fatalf("type pairs differ: %d vs %d", len(orig.Types), len(again.Types))
	}
	for _, tp := range orig.Types {
		a := orig.PerType[tp].CrossPairsSorted()
		b := again.PerType[tp].CrossPairsSorted()
		if len(a) != len(b) {
			t.Fatalf("type %v: %d vs %d correspondences", tp, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("type %v pair %d: %v vs %v", tp, i, a[i], b[i])
			}
		}
	}
}

// TestCategoryTypingIntegration re-types a template-stripped corpus from
// its categories (the paper's alternative typing mechanism) and checks
// entity-type matching still succeeds.
func TestCategoryTypingIntegration(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the corpus with article types blanked, as if the infobox
	// templates had been unusable.
	stripped := NewCorpus()
	for _, lang := range corpus.Languages() {
		for _, a := range corpus.Articles(lang) {
			cp := a.Clone()
			cp.Type = ""
			if err := stripped.Add(cp); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := len(stripped.Types(Portuguese)); got != 0 {
		t.Fatalf("stripped corpus still has %d types", got)
	}
	n := stripped.AssignTypesFromCategories(synth.CategoryTypes())
	if n == 0 {
		t.Fatal("no articles typed from categories")
	}
	pairs := MatchEntityTypes(stripped, wiki.PtEn)
	if len(pairs) != 14 {
		t.Fatalf("type pairs after category typing = %d, want 14", len(pairs))
	}
}

// TestConfidenceOrdersTranslationAlternatives checks the uncertainty
// extension: translated constraints list their attribute alternatives in
// confidence order.
func TestConfidenceOrdersTranslationAlternatives(t *testing.T) {
	corpus, _, err := GenerateCorpus(SmallCorpus())
	if err != nil {
		t.Fatal(err)
	}
	res := Match(corpus, PtEn)
	tr, _ := res.ByTypeA("ator")
	q, err := ParseQuery(`ator(falecimento="x")`)
	if err != nil {
		t.Fatal(err)
	}
	trans := TranslateQuery(q, res)
	if trans.Untranslatable || len(trans.Query.Blocks) == 0 {
		t.Fatal("actor query untranslatable")
	}
	attrs := trans.Query.Blocks[0].Constraints[0].Attrs
	if len(attrs) == 0 {
		t.Fatal("no translated alternatives")
	}
	prev := 2.0
	for _, a := range attrs {
		conf := tr.Confidence(Normalize("falecimento"), a)
		if conf > prev+1e-9 {
			t.Errorf("alternatives not in confidence order: %v", attrs)
		}
		prev = conf
	}
}
