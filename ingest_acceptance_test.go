package repro_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	repro "repro"
	"repro/internal/protocol"
)

// TestIngestPivotAcceptance is the ISSUE 10 acceptance path end to end:
// a generated 10+-edition TTL dump set is ingested back into a corpus
// (fingerprint-exact), the pivot planner batches it with a data-driven
// hub, at least one transitive-only pair is recovered with nonzero
// confidence, and the batch response is byte-identical between the
// in-process backend and a real wikimatchd served over HTTP.
func TestIngestPivotAcceptance(t *testing.T) {
	cfg := repro.DefaultEditionsCorpus()
	cfg.EntitiesPerType = 25
	if len(cfg.Languages) < 10 {
		t.Fatalf("editions fixture has %d languages, want >= 10", len(cfg.Languages))
	}
	gen, _, err := repro.GenerateEditions(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for _, lang := range gen.Languages() {
		for _, dump := range []struct {
			name   string
			render func(*os.File) error
		}{
			{string(lang) + "-infobox-properties.ttl", func(f *os.File) error {
				return repro.WritePropertiesDump(f, gen, lang)
			}},
			{string(lang) + "-interlanguage-links.ttl", func(f *os.File) error {
				return repro.WriteLinksDump(f, gen, lang)
			}},
		} {
			f, err := os.Create(filepath.Join(dir, dump.name))
			if err != nil {
				t.Fatal(err)
			}
			if err := dump.render(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	res, err := repro.IngestDir(ctx, dir, repro.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Corpus.Fingerprint(), gen.Fingerprint(); got != want {
		t.Fatalf("ingested corpus fingerprint %x, generated %x", got, want)
	}

	// The batch request leaves Hub empty: the plan must resolve it from
	// the corpus (English is present, so English it is).
	req := repro.MatchRequest{All: true, Mode: "pivot", Workers: 1}
	local := repro.NewLocalBackend(repro.NewSession(res.Corpus))
	batch, err := local.MatchAll(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Hub != "en" {
		t.Fatalf("resolved hub %q, want en", batch.Hub)
	}
	plan, err := batch.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(gen.Languages()) - 1; len(plan.Pairs) != want {
		t.Fatalf("pivot plan matched %d pairs, want %d", len(plan.Pairs), want)
	}

	// With NonHubLinkPct 0 every non-hub pair is transitive-only: the
	// plan never matched it directly, yet the clusters must induce
	// correspondences for it with nonzero confidence.
	pair := repro.LanguagePair{A: "pt", B: "vi"}
	if plan.Contains(pair.A, pair.B) {
		t.Fatalf("%s is in the direct plan; fixture should make it transitive-only", pair)
	}
	transitive := 0
	for _, cl := range batch.Clusters {
		for _, corr := range cl.Correspondences {
			if corr.Direct || corr.Confidence <= 0 {
				continue
			}
			if (corr.A.Lang == pair.A && corr.B.Lang == pair.B) ||
				(corr.A.Lang == pair.B && corr.B.Lang == pair.A) {
				transitive++
			}
		}
	}
	if transitive == 0 {
		t.Fatalf("no transitive %s correspondence with nonzero confidence", pair)
	}
	if induced := batch.Induced(pair); len(induced) == 0 {
		t.Fatalf("batch induces nothing for transitive-only pair %s", pair)
	}

	// Remote twin: the same request against a served session must be
	// byte-identical once load-dependent timings are zeroed.
	srv := httptest.NewServer(repro.NewHTTPHandler(repro.NewSession(res.Corpus)))
	defer srv.Close()
	api, err := repro.NewAPIClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := api.MatchAll(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonicalBatch(t, remote), canonicalBatch(t, batch); got != want {
		t.Fatalf("remote batch diverged from local:\n remote %s\n local  %s", got, want)
	}
}

// canonicalBatch renders a batch response with its load-dependent
// fields (elapsed timings, cache hit counters) zeroed, so local and
// remote runs can be compared byte for byte.
func canonicalBatch(t *testing.T, r *repro.MatchAllResponse) string {
	t.Helper()
	cp := *r
	cp.ElapsedMS = 0
	cp.Cache = protocol.CacheStats{}
	cp.Pairs = append([]protocol.MatchAllPair(nil), r.Pairs...)
	for i := range cp.Pairs {
		cp.Pairs[i].ElapsedMS = 0
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
