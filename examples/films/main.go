// Films: the paper's motivating scenario (Figure 1). Two infoboxes
// describe the same film in English and Portuguese with different
// schemas; WikiMatch's correspondences let us integrate them into one
// dual-language record — the "genre and studio of The Last Emperor"
// query of the introduction.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	// Only the film type matters here, so ask the session for that one
	// alignment instead of matching the whole pair.
	session := repro.NewSession(corpus)
	films, err := session.MatchType(context.Background(), repro.PtEn, "filme", "film")
	if err != nil {
		log.Fatal(err)
	}

	// Pick a cross-linked film pair and show both infoboxes.
	var ptArticle, enArticle *repro.Article
	for _, p := range corpus.Pairs(repro.PtEn) {
		if p.A.Type == "filme" && p.A.Infobox.Len() >= 6 && p.B.Infobox.Len() >= 6 {
			ptArticle, enArticle = p.A, p.B
			break
		}
	}
	if ptArticle == nil {
		log.Fatal("no film pair found")
	}
	fmt.Printf("Portuguese: %s\n", ptArticle.Title)
	for _, av := range ptArticle.Infobox.Attrs {
		fmt.Printf("  %-24s = %s\n", av.Name, av.Text)
	}
	fmt.Printf("\nEnglish: %s\n", enArticle.Title)
	for _, av := range enArticle.Infobox.Attrs {
		fmt.Printf("  %-24s = %s\n", av.Name, av.Text)
	}

	// Integrate: for every English attribute, pull the Portuguese value
	// through the derived correspondences, and vice versa — attributes
	// only one side has fill the gaps of the other.
	fmt.Printf("\nintegrated dual-language record for %q:\n", enArticle.Title)
	merged := map[string]string{}
	for _, av := range enArticle.Infobox.Attrs {
		merged[normalize(av.Name)] = av.Text
	}
	type row struct{ name, value, source string }
	var rows []row
	for name, value := range merged {
		rows = append(rows, row{name, value, "en"})
	}
	for _, av := range ptArticle.Infobox.Attrs {
		ptName := normalize(av.Name)
		enNames := films.Cross[ptName]
		covered := false
		for enName := range enNames {
			if _, ok := merged[enName]; ok {
				covered = true
				break
			}
		}
		if !covered {
			// The Portuguese side contributes an attribute the English
			// infobox lacks (the paper's "gênero" case).
			rows = append(rows, row{ptName, av.Text, "pt"})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		fmt.Printf("  %-24s = %-40s (%s)\n", r.name, clip(r.value, 40), r.source)
	}
}

func normalize(s string) string { return repro.Normalize(s) }

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
