// Confidence: the uncertainty extension. Every correspondence WikiMatch
// derives carries a confidence score combining its similarity evidence,
// LSI correlation, and how it was admitted (certain match, revision, or
// transitive grouping). This example prints the most and least trusted
// film correspondences and shows how query translation uses the scores.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	session := repro.NewSession(corpus)
	result, err := session.Match(context.Background(), repro.PtEn)
	if err != nil {
		log.Fatal(err)
	}
	films, ok := result.ByTypeA("filme")
	if !ok {
		log.Fatal("no film result")
	}

	type scored struct {
		a, b string
		conf float64
	}
	var pairs []scored
	for key, conf := range films.Confidences() {
		pairs = append(pairs, scored{a: key[0], b: key[1], conf: conf})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].conf != pairs[j].conf {
			return pairs[i].conf > pairs[j].conf
		}
		return pairs[i].a < pairs[j].a
	})

	fmt.Println("film correspondences by confidence:")
	for _, p := range pairs {
		bar := ""
		for i := 0; i < int(p.conf*20); i++ {
			bar += "█"
		}
		fmt.Printf("  %.2f %-20s %-26s ~ %s\n", p.conf, bar, p.a, p.b)
	}

	// Confidence orders translated attribute alternatives: the engine
	// tries the best-supported translation first.
	q, err := repro.ParseQuery(`ator(falecimento="1950")`)
	if err != nil {
		log.Fatal(err)
	}
	tr := repro.TranslateQuery(q, result)
	if !tr.Untranslatable {
		fmt.Printf("\nfalecimento translates to (best first): %v\n",
			tr.Query.Blocks[0].Constraints[0].Attrs)
	}
}
