// API client walkthrough: serve a small corpus over wire protocol v1
// (an in-process HTTP server standing in for wikimatchd), then drive it
// with the Go client SDK — a unary typed match, a single-type request
// with a per-request threshold override, a streamed all-pairs batch,
// and the structured error envelope with its stable codes.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}

	// Any http.Server can mount the handler; wikimatchd is exactly this
	// plus flags. The middleware stack (request IDs, load shedding,
	// panic recovery, /v1/metrics) comes built in.
	srv := httptest.NewServer(repro.NewHTTPHandler(repro.NewSession(corpus)))
	defer srv.Close()

	c, err := repro.NewAPIClient(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Unary pair match: POST /v1/match with a typed MatchRequest.
	resp, err := c.Match(ctx, repro.MatchRequest{Pair: "pt-en"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pt-en: %d entity types matched\n", len(resp.Types))

	// Single-type request with a per-request threshold override: the
	// server's cached artifacts are reused, only the decision thresholds
	// change for this one call.
	strict := 0.8
	one, err := c.Match(ctx, repro.MatchRequest{Pair: "pt-en", Type: "filme", TSim: &strict})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filme ~ %s at Tsim=%.1f: %d correspondences\n",
		one.Results[0].TypeB, strict, len(one.Results[0].Correspondences))

	// Streaming all-pairs batch: POST /v1/stream, one NDJSON line per
	// finished pair, final line carrying the merged clusters.
	stream, err := c.Stream(ctx, repro.MatchRequest{All: true, Mode: "pivot"})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()
	for stream.Next() {
		line := stream.Line()
		if line.Pair != nil {
			fmt.Printf("  [%d/%d] %s: %d correspondences\n",
				line.Done, line.Total, line.Pair.Pair, line.Pair.Correspondences)
		}
		if line.FinalAll != nil {
			fmt.Printf("batch done: %d clusters\n", len(line.FinalAll.Clusters))
		}
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}

	// Errors are structured envelopes with stable codes, surfaced as
	// *repro.APIError — the same value an in-process LocalBackend
	// returns for the same request.
	_, err = c.Match(ctx, repro.MatchRequest{Pair: "bogus"})
	var apiErr *repro.APIError
	if errors.As(err, &apiErr) {
		fmt.Printf("bad request rejected: code=%s retryable=%v (%s)\n",
			apiErr.Code, apiErr.Retryable, apiErr.Message)
	}

	// The middleware's counters, one GET away.
	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server handled %d requests\n", m.RequestsTotal)
}
