// Ingest: the real-dump front door on fabricated bytes — write a
// 12-edition corpus as DBpedia-style TTL dumps (properties + links,
// gzip-compressed), stream them back through internal/ingest into a
// fingerprint-identical corpus, and let the pivot planner recover a
// correspondence for a pair that was never matched directly.
package main

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	cfg := repro.DefaultEditionsCorpus()
	cfg.EntitiesPerType = 25
	gen, _, err := repro.GenerateEditions(cfg)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "wikimatch-ingest-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One properties dump and one links dump per edition, compressed —
	// ingestion decodes .gz/.bz2 transparently and counts raw bytes.
	for _, lang := range gen.Languages() {
		write := func(name string, render func(io.Writer) error) {
			f, err := os.Create(filepath.Join(dir, name+".gz"))
			if err != nil {
				log.Fatal(err)
			}
			zw := gzip.NewWriter(f)
			if err := render(zw); err != nil {
				log.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		write(string(lang)+"-infobox-properties.ttl", func(w io.Writer) error {
			return repro.WritePropertiesDump(w, gen, lang)
		})
		write(string(lang)+"-interlanguage-links.ttl", func(w io.Writer) error {
			return repro.WriteLinksDump(w, gen, lang)
		})
	}

	// The language set is data-driven: IngestDir discovers whatever
	// editions the directory holds.
	ctx := context.Background()
	res, err := repro.IngestDir(ctx, dir, repro.IngestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tot := res.Totals()
	fmt.Printf("ingested %d editions: %d files, %d bytes, %d triples → %d entities (%d skipped)\n",
		len(res.PerLang), tot.Files, tot.Bytes, tot.Triples, tot.Entities, tot.SkippedTotal())
	if res.Corpus.Fingerprint() != gen.Fingerprint() {
		log.Fatal("round trip diverged from the generated corpus")
	}
	fmt.Printf("round trip exact: corpus fingerprint %x\n", res.Corpus.Fingerprint())

	// All-pairs pivot batch over the ingested corpus. The hub is left
	// empty and resolved from the data; with the star-shaped fixture
	// every non-hub pair is reachable only transitively.
	backend := repro.NewLocalBackend(repro.NewSession(res.Corpus))
	batch, err := backend.MatchAll(ctx, repro.MatchRequest{All: true, Mode: "pivot"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pivot hub %s: %d direct pairs, %d clusters\n",
		batch.Hub, len(batch.Planned), len(batch.Clusters))
	for _, cl := range batch.Clusters {
		for _, corr := range cl.Correspondences {
			if !corr.Direct && corr.A.Lang == "pt" && corr.B.Lang == "vi" {
				fmt.Printf("transitive: %s ~ %s (confidence %.2f, never matched directly)\n",
					corr.A, corr.B, corr.Confidence)
				return
			}
		}
	}
	log.Fatal("no transitive pt–vi correspondence recovered")
}
