// Audit: cross-edition value consistency as a first-class workload.
// Schema matching aligns pt:filme/duração with en:film/running time;
// the audit asks the follow-up question: for every entity linked
// across editions, do the *values* of matched attributes agree? The
// paper's own motivating example is a film whose runtime is 160
// minutes in one edition and 165 in another.
//
// The walkthrough shows the full loop:
//
//  1. generate a corpus with known inconsistencies injected (nudged
//     numbers, shifted dates, unit swaps, dropped values), each
//     recorded in the ground truth's injection ledger;
//  2. run the all-pairs batch match and merge the correspondences into
//     cross-language clusters — the audit's map of which attributes to
//     compare;
//  3. audit every cross-linked entity across the clusters, printing
//     the top findings with their normalized values and
//     confidence-weighted severities;
//  4. score the detector against the injection ledger.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. A corpus with ledgered inconsistencies: AuditEvalCorpus turns
	// rendering noise off (so disagreements are signal, not formatting)
	// and injects number/date/unit/drop faults at known sites.
	corpus, truth, err := repro.GenerateCorpus(repro.AuditEvalCorpus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %v, %d injected inconsistencies\n",
		corpus.Languages(), len(truth.Injected))

	// 2. Match all pairs (pivot mode through English) and merge the
	// pairwise correspondences into cross-language attribute clusters.
	session := repro.NewSession(corpus)
	batch, err := session.MatchAll(context.Background(), repro.MultiOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched: %d clusters\n", len(batch.Clusters))

	// 3. Compare values across editions. Findings come back ranked by
	// severity — disagreement magnitude weighted by the correspondence
	// confidence of the attribute pair the values met on.
	report := repro.Audit(corpus, batch.Clusters, repro.AuditOptions{})
	fmt.Printf("audited: %d entities, %d comparisons, %d findings\n\n",
		report.Entities, report.Compared, len(report.Findings))
	for i, f := range report.Findings {
		if i == 5 {
			break
		}
		fmt.Printf("%d. [%.3f] %s %s (cluster %d)\n", i+1, f.Severity, f.Kind, f.Entity, f.Cluster)
		for _, v := range f.Values {
			fmt.Printf("     %s %s = %q", v.Lang, v.Attr, v.Raw)
			if v.Norm != "" && v.Norm != v.Raw {
				fmt.Printf("  → %s", v.Norm)
			}
			fmt.Println()
		}
	}

	// 4. Score the detector against the ledger: precision over findings
	// at or above the severity gate, recall over all injections. The
	// committed acceptance test holds this at ≥0.85 / ≥0.75.
	res := repro.EvaluateAudit(report.Findings, truth, 0.5)
	fmt.Printf("\ndetector vs ledger: TP=%d FP=%d missed=%d  precision=%.2f recall=%.2f\n",
		res.TP, res.FP, res.Missed, res.Precision, res.Recall)
}
