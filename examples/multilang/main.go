// Multilang: the all-pairs multilingual workload. Match every language
// pair of the three-edition corpus in one batch — pivot mode through the
// English hub — and merge the pairwise correspondences into
// cross-language attribute clusters.
//
// The walkthrough shows the three things the subsystem adds over
// pairwise matching:
//
//  1. transitive correspondences: Portuguese and Vietnamese share no
//     cross-language links, so no pairwise run can align them — but the
//     clusters connect pt:filme/direção to vi:phim/đạo diễn through
//     en:film/directed by, with a bottleneck confidence;
//  2. artifact reuse: pivot mode runs N−1 pairs over one shared session,
//     so a batch builds no more than the hub pairs' artifacts, and a
//     direct-mode batch (which also attempts pt-vi) builds strictly more;
//  3. quality: the induced pt-vi correspondences are scored against the
//     generator's gold alignments.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	corpus, truth, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. One batch, pivoting through English, with streamed progress.
	session := repro.NewSession(corpus)
	updates, err := session.MatchAllStream(ctx, repro.MultiOptions{Mode: repro.ModePivot})
	if err != nil {
		log.Fatal(err)
	}
	var batch *repro.BatchResult
	for u := range updates {
		if u.Outcome != nil {
			if u.Outcome.Err != nil {
				fmt.Printf("[%d/%d] %s: failed: %v\n", u.Done, u.Total, u.Outcome.Pair, u.Outcome.Err)
			} else {
				fmt.Printf("[%d/%d] %s: %d types in %v\n", u.Done, u.Total,
					u.Outcome.Pair, len(u.Outcome.Result.Types), u.Outcome.Elapsed.Round(time.Millisecond))
			}
		}
		if u.Final != nil {
			batch = u.Final
		}
	}

	trilingual := 0
	for _, cl := range batch.Clusters {
		if len(cl.Languages) == 3 {
			trilingual++
		}
	}
	fmt.Printf("\n%d clusters, %d spanning all three editions\n\n", len(batch.Clusters), trilingual)

	// Show the film "directed by" cluster: the pt-vi correspondence is
	// transitive — derived through the hub, never matched directly.
	for _, cl := range batch.Clusters {
		if len(cl.Languages) < 3 {
			continue
		}
		isDirected := false
		for _, m := range cl.Members {
			if m.Name == "directed by" && m.Type == "film" {
				isDirected = true
			}
		}
		if !isDirected {
			continue
		}
		fmt.Printf("cluster %d (agreement %.2f):\n", cl.ID, cl.Agreement)
		for _, m := range cl.Members {
			fmt.Printf("  %s\n", m)
		}
		for _, corr := range cl.Correspondences {
			kind := "direct"
			if !corr.Direct {
				kind = "transitive"
			}
			fmt.Printf("  %s ~ %s (%s, confidence %.2f)\n", corr.A, corr.B, kind, corr.Confidence)
		}
		break
	}

	// 2. Artifact economics: pivot builds fewer artifacts than direct.
	pivotStats := session.CacheStats()
	directSession := repro.NewSession(corpus)
	if _, err := directSession.MatchAll(ctx, repro.MultiOptions{Mode: repro.ModeDirect}); err != nil {
		log.Fatal(err)
	}
	directStats := directSession.CacheStats()
	fmt.Printf("\nartifact builds: pivot %d, direct %d (direct also attempts pt-vi head on)\n",
		pivotStats.Misses, directStats.Misses)

	// A later pairwise call reuses the batch's artifacts wholesale.
	start := time.Now()
	if _, err := session.Match(ctx, repro.PtEn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm pt-en match after the batch: %v\n", time.Since(start).Round(time.Millisecond))

	// 3. Score the purely transitive pt-vi correspondences against gold.
	ptVi := repro.LanguagePair{A: repro.Portuguese, B: repro.Vietnamese}
	induced := batch.Induced(ptVi)
	var rows []repro.PRF
	for tp, derived := range induced {
		canon, ok := truth.CanonType(ptVi.A, tp[0])
		if !ok {
			continue
		}
		tt, _ := truth.TruthFor(canon)
		gold := make(repro.Correspondences)
		for _, p := range tt.CrossPairs(ptVi) {
			gold.Add(p[0], p[1])
		}
		rows = append(rows, repro.MacroScores(derived, gold))
	}
	if len(rows) > 0 {
		var avg repro.PRF
		for _, r := range rows {
			avg.Precision += r.Precision
			avg.Recall += r.Recall
			avg.F += r.F
		}
		n := float64(len(rows))
		fmt.Printf("\npt-vi transitive vs gold (macro over %d types): P=%.3f R=%.3f F=%.3f\n",
			len(rows), avg.Precision/n, avg.Recall/n, avg.F/n)
	}
}
