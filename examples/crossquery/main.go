// Crossquery: the Section 5 case study. Run the Table 4 workload in
// Portuguese and Vietnamese, translate each query into English through
// WikiMatch's derived correspondences, and compare the cumulative gain
// of the monolingual and translated answers (Figure 4).
//
// Both language pairs are matched off one shared session: the Pt–En and
// Vn–En runs reuse the session's cached artifacts, and a repeated Pt–En
// match shows the warm-path speedup.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	corpus, truth, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	session := repro.NewSession(corpus)

	start := time.Now()
	resPt, err := session.Match(ctx, repro.PtEn)
	if err != nil {
		log.Fatal(err)
	}
	coldPt := time.Since(start)

	resVn, err := session.Match(ctx, repro.VnEn)
	if err != nil {
		log.Fatal(err)
	}

	// The session has now cached both pairs' dictionaries and per-type
	// LSI models; matching Pt–En again only re-runs the alignment.
	start = time.Now()
	if _, err := session.Match(ctx, repro.PtEn); err != nil {
		log.Fatal(err)
	}
	warmPt := time.Since(start)
	st := session.CacheStats()
	fmt.Printf("session: pt-en cold %v, warm %v (%.1fx); cache %d type entries, %d hits\n\n",
		coldPt.Round(time.Millisecond), warmPt.Round(time.Millisecond),
		float64(coldPt)/float64(warmPt), st.TypeEntries, st.Hits)

	// Show one query's journey across languages.
	q, err := repro.ParseQuery(`artista(nome=?, origem="França", gênero="Jazz")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query (pt):", q)
	tr := repro.TranslateQuery(q, resPt)
	fmt.Println("translated:", tr.Query)
	if len(tr.RelaxedAttrs) > 0 {
		fmt.Println("relaxed constraints:", tr.RelaxedAttrs)
	}

	ptEngine := repro.NewQueryEngine(corpus, repro.Portuguese)
	enEngine := repro.NewQueryEngine(corpus, repro.English)
	fmt.Printf("\nmonolingual answers (pt): %d\n", len(ptEngine.Run(q, 20)))
	fmt.Printf("translated answers (en):  %d\n", len(enEngine.Run(tr.Query, 20)))

	// Full case study.
	series, err := repro.CaseStudy(corpus, truth, resPt, resVn, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncumulative gain over the Table 4 workload:")
	fmt.Printf("%-4s", "k")
	for _, s := range series {
		fmt.Printf(" %8s", s.Name)
	}
	fmt.Println()
	for _, k := range []int{1, 5, 10, 20} {
		fmt.Printf("%-4d", k)
		for _, s := range series {
			fmt.Printf(" %8.1f", s.CG[k-1])
		}
		fmt.Println()
	}
}
