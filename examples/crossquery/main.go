// Crossquery: the Section 5 case study. Run the Table 4 workload in
// Portuguese and Vietnamese, translate each query into English through
// WikiMatch's derived correspondences, and compare the cumulative gain
// of the monolingual and translated answers (Figure 4).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	corpus, truth, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	resPt := repro.Match(corpus, repro.PtEn)
	resVn := repro.Match(corpus, repro.VnEn)

	// Show one query's journey across languages.
	q, err := repro.ParseQuery(`artista(nome=?, origem="França", gênero="Jazz")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query (pt):", q)
	tr := repro.TranslateQuery(q, resPt)
	fmt.Println("translated:", tr.Query)
	if len(tr.RelaxedAttrs) > 0 {
		fmt.Println("relaxed constraints:", tr.RelaxedAttrs)
	}

	ptEngine := repro.NewQueryEngine(corpus, repro.Portuguese)
	enEngine := repro.NewQueryEngine(corpus, repro.English)
	fmt.Printf("\nmonolingual answers (pt): %d\n", len(ptEngine.Run(q, 20)))
	fmt.Printf("translated answers (en):  %d\n", len(enEngine.Run(tr.Query, 20)))

	// Full case study.
	series, err := repro.CaseStudy(corpus, truth, resPt, resVn, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncumulative gain over the Table 4 workload:")
	fmt.Printf("%-4s", "k")
	for _, s := range series {
		fmt.Printf(" %8s", s.Name)
	}
	fmt.Println()
	for _, k := range []int{1, 5, 10, 20} {
		fmt.Printf("%-4d", k)
		for _, s := range series {
			fmt.Printf(" %8.1f", s.CG[k-1])
		}
		fmt.Println()
	}
}
