// Ablation: the component-contribution study of Section 4.2 (Table 3)
// on a small corpus — run WikiMatch repeatedly, each time with one
// component disabled, and report how precision and recall move.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	exp, err := repro.NewExperiments(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	base := repro.DefaultMatcherConfig()

	type variant struct {
		name string
		cfg  repro.MatcherConfig
	}
	mk := func(name string, mod func(*repro.MatcherConfig)) variant {
		cfg := base
		mod(&cfg)
		return variant{name, cfg}
	}
	variants := []variant{
		mk("WikiMatch (full)", func(*repro.MatcherConfig) {}),
		mk("without ReviseUncertain", func(c *repro.MatcherConfig) { c.DisableRevise = true }),
		mk("without IntegrateMatches", func(c *repro.MatcherConfig) { c.DisableIntegrate = true }),
		mk("random queue order", func(c *repro.MatcherConfig) { c.RandomOrder = true }),
		mk("single step", func(c *repro.MatcherConfig) { c.SingleStep = true }),
		mk("without vsim", func(c *repro.MatcherConfig) { c.DisableVSim = true }),
		mk("without lsim", func(c *repro.MatcherConfig) { c.DisableLSim = true }),
		mk("without LSI", func(c *repro.MatcherConfig) { c.DisableLSI = true }),
		mk("without dictionary", func(c *repro.MatcherConfig) { c.NoDictionary = true }),
	}

	fmt.Printf("%-28s | %-20s\n", "configuration", "pt-en avg  P    R    F")
	for _, v := range variants {
		var sum repro.PRF
		n := 0
		for _, tc := range exp.Cases(repro.PtEn) {
			prf := exp.EvaluateWeighted(tc, exp.RunWikiMatch(tc, v.cfg))
			sum.Precision += prf.Precision
			sum.Recall += prf.Recall
			sum.F += prf.F
			n++
		}
		fmt.Printf("%-28s |        %5.2f %5.2f %5.2f\n",
			v.name, sum.Precision/float64(n), sum.Recall/float64(n), sum.F/float64(n))
	}
}
