// Dumps: exercise the full byte-level pipeline — write the synthetic
// corpus to MediaWiki XML dumps on disk, load it back through the
// streaming parser, and verify that matching from the reloaded corpus
// reproduces the in-memory correspondences.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "wikimatch-dumps-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	for _, lang := range corpus.Languages() {
		path := filepath.Join(dir, string(lang)+".xml")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.WriteDump(f, corpus, lang); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("wrote %s (%.1f MB, %d articles)\n",
			path, float64(info.Size())/(1<<20), corpus.LenLang(lang))
	}

	reloaded := repro.NewCorpus()
	for _, lang := range corpus.Languages() {
		f, err := os.Open(filepath.Join(dir, string(lang)+".xml"))
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.LoadDump(reloaded, f, lang)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Errors) > 0 {
			log.Fatalf("%d page errors in %s dump, first: %v", len(res.Errors), lang, res.Errors[0])
		}
	}
	fmt.Printf("reloaded %d articles\n\n", reloaded.Len())

	// A session is bound to one corpus, so the in-memory original and the
	// reloaded copy each get their own.
	ctx := context.Background()
	orig, err := repro.NewSession(corpus).Match(ctx, repro.VnEn)
	if err != nil {
		log.Fatal(err)
	}
	again, err := repro.NewSession(reloaded).Match(ctx, repro.VnEn)
	if err != nil {
		log.Fatal(err)
	}
	for _, tp := range orig.Types {
		a := orig.PerType[tp].CrossPairsSorted()
		b := again.PerType[tp].CrossPairsSorted()
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		fmt.Printf("%-28s %d correspondences, identical after round-trip: %v\n", tp[0], len(a), same)
		if !same {
			log.Fatal("round-trip changed the matching result")
		}
	}
}
