// Quickstart: generate a small multilingual corpus, open a matching
// session, run WikiMatch on the Portuguese–English pair, and print the
// derived attribute correspondences for a couple of types.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d articles across %v\n\n", corpus.Len(), corpus.Languages())

	// A session caches the pair's dictionary and per-type LSI artifacts,
	// so any further Match / MatchType / MatchStream calls on it are
	// nearly free. For a single one-shot match, repro.Match does the same
	// thing with a throwaway session.
	session := repro.NewSession(corpus)
	result, err := session.Match(context.Background(), repro.PtEn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matched entity types:")
	for _, tp := range result.Types {
		fmt.Printf("  %-26s ~ %s\n", tp[0], tp[1])
	}

	for _, want := range []string{"filme", "ator"} {
		tr, ok := result.ByTypeA(want)
		if !ok {
			log.Fatalf("no result for type %s", want)
		}
		fmt.Printf("\ncorrespondences for %s ~ %s:\n", tr.TypeA, tr.TypeB)
		for _, p := range tr.CrossPairsSorted() {
			fmt.Printf("  %-28s ~ %s\n", p[0], p[1])
		}
	}
}
