// Quickstart: generate a small multilingual corpus, run WikiMatch on the
// Portuguese–English pair, and print the derived attribute
// correspondences for a couple of types.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d articles across %v\n\n", corpus.Len(), corpus.Languages())

	result := repro.Match(corpus, repro.PtEn)
	fmt.Println("matched entity types:")
	for _, tp := range result.Types {
		fmt.Printf("  %-26s ~ %s\n", tp[0], tp[1])
	}

	for _, want := range []string{"filme", "ator"} {
		tr, ok := result.ByTypeA(want)
		if !ok {
			log.Fatalf("no result for type %s", want)
		}
		fmt.Printf("\ncorrespondences for %s ~ %s:\n", tr.TypeA, tr.TypeB)
		for _, p := range tr.CrossPairsSorted() {
			fmt.Printf("  %-28s ~ %s\n", p[0], p[1])
		}
	}
}
