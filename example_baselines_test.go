package repro_test

import (
	"fmt"
	"sort"

	"repro"
)

// ExampleRunBouma runs the Bouma et al. baseline aligner over the film
// type of the small synthetic corpus and prints a few of its derived
// correspondences alongside the COMA++ instance matcher's count — the
// facade-level way to reproduce the paper's baseline comparisons without
// touching the experiment harness.
func ExampleRunBouma() {
	corpus, _, err := repro.GenerateCorpus(repro.SmallCorpus())
	if err != nil {
		panic(err)
	}

	bouma := repro.RunBouma(corpus, repro.PtEn, "filme", "film", repro.DefaultBoumaConfig())
	var pairs []string
	for a, bs := range bouma {
		for b := range bs {
			pairs = append(pairs, a+" ~ "+b)
		}
	}
	sort.Strings(pairs)
	fmt.Println("bouma correspondences:", len(pairs))
	for _, p := range pairs[:3] {
		fmt.Println(" ", p)
	}

	// The COMA++-style instance matcher ("I") over the same type.
	coma := repro.RunCOMA(corpus, repro.PtEn, "filme", "film", nil, repro.COMAConfigs(0.01)[1])
	fmt.Println("coma-I correspondences:", coma.Pairs())

	// Output:
	// bouma correspondences: 15
	//   direcao ~ directed by
	//   distribuicao ~ distributed by
	//   edicao ~ editing by
	// coma-I correspondences: 15
}
